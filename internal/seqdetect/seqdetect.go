// Package seqdetect implements the stateful log-sequence anomaly detector
// (§IV-B): parsed logs are grouped by their discovered event ID, ordered
// by log time, and validated against the learned automata rules. Events
// violating the rules produce the Table II anomaly types. Open states are
// expired — and missing-end-state anomalies reported in time — when the
// external heartbeat controller advances log time (§V-B).
//
// The detector never reads a wall clock: every temporal decision (duration
// windows, expiry) is a function of the log times and heartbeat times fed
// to Process and HeartbeatFor. That makes it deterministic by construction
// under the internal/clock fake-clock harness — drive the heartbeat
// controller on a clock.Fake and the whole expiry pipeline replays
// identically; see internal/chaos for the seeded scenario suite.
package seqdetect

import (
	"fmt"
	"sort"
	"time"

	"loglens/internal/anomaly"
	"loglens/internal/automata"
	"loglens/internal/logtypes"
	"loglens/internal/metrics"
	"loglens/internal/obs"
)

// Config tunes the detector.
type Config struct {
	// DurationSlack widens the learned duration window by this fraction
	// before flagging violations, absorbing training-window sampling
	// noise. Default 0.1 (10%).
	DurationSlack float64

	// ExpiryFactor scales the learned max duration when deciding that
	// an open state has expired (its end is never coming). Default 2.0:
	// an event twice as old as the slowest training event is dead.
	ExpiryFactor float64
}

func (c *Config) setDefaults() {
	if c.DurationSlack == 0 {
		c.DurationSlack = 0.1
	}
	if c.ExpiryFactor == 0 {
		c.ExpiryFactor = 2.0
	}
}

type stateKey struct {
	autoID  int
	eventID string
}

// openEvent is the in-memory state of one (automaton, event) pair.
type openEvent struct {
	auto         *automata.Automaton
	eventID      string
	source       string
	begin        time.Time
	last         time.Time
	counts       map[int]int
	logs         []logtypes.Log
	firstPattern int
	missingBegin bool
}

// Stats counts detector activity.
type Stats struct {
	// LogsProcessed counts tracked logs (pattern had an ID field).
	LogsProcessed uint64
	// LogsSkipped counts logs whose pattern has no ID field or belongs
	// to no automaton.
	LogsSkipped uint64
	// EventsClosed counts events that reached an end state.
	EventsClosed uint64
	// EventsExpired counts events closed by heartbeat expiry.
	EventsExpired uint64
	// Anomalies counts emitted anomaly records.
	Anomalies uint64
}

// Detector is the stateful log-sequence anomaly detector. It is NOT safe
// for concurrent use; the streaming engine runs one per partition.
type Detector struct {
	model   *automata.Model
	cfg     Config
	states  map[stateKey]*openEvent
	byEvent map[string]map[int]*openEvent // eventID -> autoID -> state
	// byPattern caches Model.AutomataFor per pattern ID: the model scan
	// allocates its result slice, and the hot path asks about the same
	// few patterns on every line. Reset on SetModel.
	byPattern map[int][]*automata.Automaton
	stats     Stats
	instr     *detectInstr
	tracer    metrics.Tracer
	events    *obs.FlightRecorder
}

// detectInstr mirrors detector activity into a shared registry. Several
// detectors (one per stream partition) share the same handles: counters
// aggregate via atomic adds, and the open-states gauge is maintained by
// delta so the total spans all partitions.
type detectInstr struct {
	transitions *metrics.Counter
	skipped     *metrics.Counter
	closed      *metrics.Counter
	expired     *metrics.Counter
	anomalies   *metrics.Counter
	open        *metrics.Gauge
}

// New constructs a Detector over the model.
func New(model *automata.Model, cfg Config) *Detector {
	cfg.setDefaults()
	return &Detector{
		model:     model,
		cfg:       cfg,
		states:    make(map[stateKey]*openEvent),
		byEvent:   make(map[string]map[int]*openEvent),
		byPattern: make(map[int][]*automata.Automaton),
	}
}

// automataFor resolves (and caches) the automata containing a pattern.
// Caching nil results matters too: untracked patterns hit the skip path
// on every line.
func (d *Detector) automataFor(patternID int) []*automata.Automaton {
	autos, ok := d.byPattern[patternID]
	if !ok {
		autos = d.model.AutomataFor(patternID)
		d.byPattern[patternID] = autos
	}
	return autos
}

// Model returns the active model.
func (d *Detector) Model() *automata.Model { return d.model }

// Instrument mirrors the detector's counters into reg under the
// seqdetect_* names. Call before feeding logs; the open-states gauge
// tracks deltas from the moment of instrumentation.
func (d *Detector) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	d.instr = &detectInstr{
		transitions: reg.Counter("seqdetect_transitions_total"),
		skipped:     reg.Counter("seqdetect_skipped_total"),
		closed:      reg.Counter("seqdetect_events_closed_total"),
		expired:     reg.Counter("seqdetect_events_expired_total"),
		anomalies:   reg.Counter("seqdetect_anomalies_total"),
		open:        reg.Gauge("seqdetect_open_states"),
	}
}

// SetTracer installs a tracer stamping StageDetect for every processed
// log; nil disables tracing.
func (d *Detector) SetTracer(tr metrics.Tracer) { d.tracer = tr }

// SetRecorder installs a flight recorder capturing heartbeat expiries at
// the source; nil disables.
func (d *Detector) SetRecorder(f *obs.FlightRecorder) { d.events = f }

// SetModel swaps in an updated model without losing unrelated state (§V-A:
// model updates must preserve states). Open states whose automaton no
// longer exists in the new model are dropped silently; surviving automata
// keep their in-flight events.
func (d *Detector) SetModel(m *automata.Model) {
	d.model = m
	d.byPattern = make(map[int][]*automata.Automaton)
	for key, st := range d.states {
		a, ok := m.Get(key.autoID)
		if !ok {
			d.drop(st)
			continue
		}
		st.auto = a
	}
}

// OpenStates returns the number of open (automaton, event) states held in
// memory.
func (d *Detector) OpenStates() int { return len(d.states) }

// Stats returns a snapshot of the activity counters.
func (d *Detector) Stats() Stats { return d.stats }

// Process feeds one parsed log to the detector, returning any anomalies
// the log makes decidable (events it closes).
func (d *Detector) Process(l *logtypes.ParsedLog) []anomaly.Record {
	eventID, ok := d.model.EventID(l)
	if !ok || eventID == "" {
		d.skip(l, "no-event-id")
		return nil
	}
	autos := d.automataFor(l.PatternID)
	if len(autos) == 0 {
		d.skip(l, "no-automaton")
		return nil
	}
	d.stats.LogsProcessed++
	if d.instr != nil {
		d.instr.transitions.Inc()
	}

	now := l.EventTime()
	closing := false
	for _, a := range autos {
		key := stateKey{autoID: a.ID, eventID: eventID}
		st, open := d.states[key]
		if !open {
			st = &openEvent{
				auto:         a,
				eventID:      eventID,
				source:       l.Source,
				begin:        now,
				counts:       make(map[int]int),
				firstPattern: l.PatternID,
			}
			if l.PatternID != a.BeginPattern {
				// The event's logs started mid-workflow.
				st.missingBegin = true
			}
			d.states[key] = st
			if d.instr != nil {
				d.instr.open.Add(1)
			}
			ev := d.byEvent[eventID]
			if ev == nil {
				ev = make(map[int]*openEvent)
				d.byEvent[eventID] = ev
			}
			ev[a.ID] = st
		}
		st.counts[l.PatternID]++
		st.last = now
		st.logs = append(st.logs, l.Log)
		if l.PatternID == a.EndPattern {
			closing = true
		}
	}
	if !closing {
		if d.tracer != nil {
			d.tracer.Stamp(l.Source, l.Seq, metrics.StageDetect, "event="+eventID+" open")
		}
		return nil
	}
	recs := d.closeEvent(eventID, now)
	if d.tracer != nil {
		d.tracer.Stamp(l.Source, l.Seq, metrics.StageDetect,
			fmt.Sprintf("event=%s close anomalies=%d", eventID, len(recs)))
	}
	return recs
}

// skip accounts a log the detector cannot track.
func (d *Detector) skip(l *logtypes.ParsedLog, why string) {
	d.stats.LogsSkipped++
	if d.instr != nil {
		d.instr.skipped.Inc()
	}
	if d.tracer != nil {
		d.tracer.Stamp(l.Source, l.Seq, metrics.StageDetect, "skip "+why)
	}
}

// closeEvent evaluates every open automaton state of the event once an end
// state has been reached. If the trace conforms cleanly to at least one
// automaton, the event is normal (overlapping automata may have opened
// speculative siblings); otherwise the best-matching automaton's
// violations produce one anomaly record. All states of the event are
// released either way.
func (d *Detector) closeEvent(eventID string, now time.Time) []anomaly.Record {
	ev := d.byEvent[eventID]
	if len(ev) == 0 {
		return nil
	}
	// Only automata whose end state has been reached are decidable;
	// keep others open (they may be mid-flight workflows sharing the
	// event ID prefix).
	var decidable []*openEvent
	for _, st := range ev {
		if st.counts[st.auto.EndPattern] > 0 {
			decidable = append(decidable, st)
		}
	}
	if len(decidable) == 0 {
		return nil
	}
	sort.Slice(decidable, func(i, j int) bool { return decidable[i].auto.ID < decidable[j].auto.ID })

	var best *openEvent
	var bestViolations []violation
	for _, st := range decidable {
		v := d.evaluate(st, now, false)
		if len(v) == 0 {
			// Clean close: drop everything for this event.
			d.stats.EventsClosed++
			if d.instr != nil {
				d.instr.closed.Inc()
			}
			d.dropEvent(eventID)
			return nil
		}
		if best == nil || len(v) < len(bestViolations) {
			best, bestViolations = st, v
		}
	}
	st := best
	d.stats.EventsClosed++
	if d.instr != nil {
		d.instr.closed.Inc()
	}
	d.dropEvent(eventID)
	rec := d.record(st, bestViolations, now)
	d.stats.Anomalies++
	if d.instr != nil {
		d.instr.anomalies.Inc()
	}
	return []anomaly.Record{rec}
}

// Heartbeat advances log time from the external heartbeat controller:
// open states older than the expiry window are closed as missing-end
// anomalies (§V-B "Expedited Anomaly Detection"). The heartbeat's
// timestamp is synthesized from the source's log rate, so expiry works
// even when no logs flow. A non-empty source restricts expiry to that
// source's states (the controller emits one heartbeat per log source).
func (d *Detector) Heartbeat(now time.Time) []anomaly.Record {
	return d.HeartbeatFor("", now)
}

// HeartbeatFor is Heartbeat restricted to one log source ("" = all).
func (d *Detector) HeartbeatFor(source string, now time.Time) []anomaly.Record {
	var out []anomaly.Record
	// Find events where every open automaton state has expired.
	expiredEvents := make([]string, 0)
	for eventID, ev := range d.byEvent {
		allExpired := len(ev) > 0
		for _, st := range ev {
			if source != "" && st.source != source {
				allExpired = false
				break
			}
			if !d.expired(st, now) {
				allExpired = false
				break
			}
		}
		if allExpired {
			expiredEvents = append(expiredEvents, eventID)
		}
	}
	sort.Strings(expiredEvents)
	for _, eventID := range expiredEvents {
		ev := d.byEvent[eventID]
		// Report against the automaton that saw the most logs (the
		// closest workflow), tie broken by ID.
		var best *openEvent
		for _, st := range ev {
			if best == nil || len(st.logs) > len(best.logs) ||
				(len(st.logs) == len(best.logs) && st.auto.ID < best.auto.ID) {
				best = st
			}
		}
		violations := d.evaluate(best, now, true)
		d.stats.EventsExpired++
		if d.instr != nil {
			d.instr.expired.Inc()
		}
		d.events.Record(obs.EventHeartbeatExpiry, best.source,
			"event "+eventID+" expired by heartbeat", int64(best.auto.ID))
		d.dropEvent(eventID)
		// The anomaly is timestamped at the event's last observed log,
		// not at the heartbeat: that is when the event went quiet, and
		// it keeps burst structure intact for cluster analysis
		// (Figure 6).
		rec := d.record(best, violations, best.last)
		d.stats.Anomalies++
		if d.instr != nil {
			d.instr.anomalies.Inc()
		}
		out = append(out, rec)
	}
	return out
}

// Flush closes every open state unconditionally (end of stream),
// reporting missing-end anomalies. Equivalent to a final heartbeat
// infinitely far in the future.
func (d *Detector) Flush() []anomaly.Record {
	var far time.Time
	for _, st := range d.states {
		if st.last.After(far) {
			far = st.last
		}
	}
	return d.Heartbeat(far.Add(1000 * time.Hour))
}

type violation struct {
	typ    anomaly.Type
	reason string
}

// evaluate checks an event trace against its automaton's rules, returning
// the violations ordered by severity (missing begin/end, then missing
// intermediate states, then occurrence bounds, then duration).
func (d *Detector) evaluate(st *openEvent, now time.Time, expiry bool) []violation {
	a := st.auto
	var v []violation
	if expiry {
		v = append(v, violation{anomaly.MissingEnd, fmt.Sprintf(
			"event %q expired after %v without reaching end state (pattern %d)",
			st.eventID, now.Sub(st.begin), a.EndPattern)})
	}
	if st.missingBegin {
		v = append(v, violation{anomaly.MissingBegin, fmt.Sprintf(
			"event %q started at pattern %d, not the begin state (pattern %d)",
			st.eventID, st.firstPattern, a.BeginPattern)})
	}
	for _, s := range a.States {
		c := st.counts[s.PatternID]
		isBegin := s.PatternID == a.BeginPattern
		isEnd := s.PatternID == a.EndPattern
		if c == 0 {
			if isBegin || (isEnd && expiry) {
				continue // already reported as missing begin/end
			}
			if s.MinOcc > 0 && !isEnd {
				v = append(v, violation{anomaly.MissingIntermediate, fmt.Sprintf(
					"event %q missing intermediate state (pattern %d)", st.eventID, s.PatternID)})
			}
			continue
		}
		if c < s.MinOcc || c > s.MaxOcc {
			v = append(v, violation{anomaly.OccurrenceViolation, fmt.Sprintf(
				"event %q state (pattern %d) occurred %d times, learned bounds [%d,%d]",
				st.eventID, s.PatternID, c, s.MinOcc, s.MaxOcc)})
		}
	}
	if !expiry && !st.missingBegin {
		dur := st.last.Sub(st.begin)
		lo := time.Duration(float64(a.MinDuration) * (1 - d.cfg.DurationSlack))
		hi := time.Duration(float64(a.MaxDuration) * (1 + d.cfg.DurationSlack))
		if dur < lo || dur > hi {
			v = append(v, violation{anomaly.DurationViolation, fmt.Sprintf(
				"event %q took %v, learned bounds [%v,%v]", st.eventID, dur, a.MinDuration, a.MaxDuration)})
		}
	}
	return v
}

// expired reports whether an open state's end can no longer arrive by now.
func (d *Detector) expired(st *openEvent, now time.Time) bool {
	window := time.Duration(float64(st.auto.MaxDuration) * d.cfg.ExpiryFactor)
	if min := 1 * time.Second; window < min {
		window = min
	}
	return now.Sub(st.begin) > window
}

// record converts the violations of one event into a single anomaly
// record typed by the most severe violation, with all reasons joined.
func (d *Detector) record(st *openEvent, violations []violation, now time.Time) anomaly.Record {
	typ := anomaly.DurationViolation
	reasons := make([]string, 0, len(violations))
	for _, v := range violations {
		if rank(v.typ) < rank(typ) {
			typ = v.typ
		}
		reasons = append(reasons, v.reason)
	}
	reason := ""
	for i, r := range reasons {
		if i > 0 {
			reason += "; "
		}
		reason += r
	}
	return anomaly.Record{
		Type:        typ,
		Severity:    severityOf(typ),
		Reason:      reason,
		Timestamp:   now,
		Source:      st.source,
		EventID:     st.eventID,
		AutomatonID: st.auto.ID,
		Logs:        append([]logtypes.Log(nil), st.logs...),
	}
}

func rank(t anomaly.Type) int {
	switch t {
	case anomaly.MissingEnd:
		return 0
	case anomaly.MissingBegin:
		return 1
	case anomaly.MissingIntermediate:
		return 2
	case anomaly.OccurrenceViolation:
		return 3
	default:
		return 4
	}
}

func severityOf(t anomaly.Type) anomaly.Severity {
	switch t {
	case anomaly.MissingEnd, anomaly.MissingBegin:
		return anomaly.Critical
	case anomaly.MissingIntermediate, anomaly.OccurrenceViolation:
		return anomaly.Warning
	default:
		return anomaly.Info
	}
}

// dropEvent releases every open state of an event.
func (d *Detector) dropEvent(eventID string) {
	n := len(d.byEvent[eventID])
	for autoID := range d.byEvent[eventID] {
		delete(d.states, stateKey{autoID: autoID, eventID: eventID})
	}
	delete(d.byEvent, eventID)
	if d.instr != nil && n > 0 {
		d.instr.open.Add(int64(-n))
	}
}

// drop releases one state.
func (d *Detector) drop(st *openEvent) {
	delete(d.states, stateKey{autoID: st.auto.ID, eventID: st.eventID})
	ev := d.byEvent[st.eventID]
	delete(ev, st.auto.ID)
	if len(ev) == 0 {
		delete(d.byEvent, st.eventID)
	}
	if d.instr != nil {
		d.instr.open.Add(-1)
	}
}
