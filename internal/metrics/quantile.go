package metrics

import "math"

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed
// distribution by linear interpolation inside the bucket that contains
// the target rank — the same estimator Prometheus's histogram_quantile
// uses. The estimate is exact when all observations in the target
// bucket are uniformly distributed, and always within one bucket width
// of the true value otherwise; choose bucket bounds accordingly.
//
// Edge cases: an empty histogram returns NaN (there is no distribution
// to query); q < 0 returns -Inf and q > 1 returns +Inf, mirroring
// Prometheus; ranks landing in the overflow bucket clamp to the last
// finite bound, which is the most honest answer a bounded histogram can
// give.
func (h HistogramValue) Quantile(q float64) float64 {
	if h.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		return math.Inf(-1)
	}
	if q > 1 {
		return math.Inf(+1)
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, bound := range h.Bounds {
		n := float64(h.Buckets[i])
		if n > 0 && cum+n >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.Bounds[i-1]
			}
			return lower + (bound-lower)*(rank-cum)/n
		}
		cum += n
	}
	// Rank falls in the overflow bucket (or every counted bucket was
	// empty, which cannot happen when Count > 0 and the snapshot is
	// consistent): clamp to the largest finite bound.
	if len(h.Bounds) == 0 {
		return math.NaN()
	}
	return h.Bounds[len(h.Bounds)-1]
}
