package metrics

import (
	"math"
	"testing"
)

// hv builds a HistogramValue from bounds and per-bucket counts (the
// last count is the overflow bucket).
func hv(bounds []float64, counts ...uint64) HistogramValue {
	if len(counts) != len(bounds)+1 {
		panic("hv: counts must be len(bounds)+1")
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	return HistogramValue{Count: total, Bounds: bounds, Buckets: counts}
}

func TestQuantileInterpolation(t *testing.T) {
	bounds := []float64{0.01, 0.05, 0.1}
	cases := []struct {
		name string
		h    HistogramValue
		q    float64
		want float64
	}{
		// 100 observations all in (0.05, 0.1]: p50 interpolates to the
		// bucket midpoint, p0 to its lower edge, p100 to its upper edge.
		{"mid", hv(bounds, 0, 0, 100, 0), 0.50, 0.075},
		{"lower-edge", hv(bounds, 0, 0, 100, 0), 0, 0.05},
		{"upper-edge", hv(bounds, 0, 0, 100, 0), 1, 0.1},
		// First bucket interpolates from zero.
		{"first-bucket", hv(bounds, 10, 0, 0, 0), 0.5, 0.005},
		// Split across buckets: 10 in (0,0.01], 90 in (0.05,0.1].
		// p50: rank 50 lands 40/90 into the third bucket.
		{"split-p50", hv(bounds, 10, 0, 90, 0), 0.50, 0.05 + 0.05*40/90},
		{"split-p95", hv(bounds, 10, 0, 90, 0), 0.95, 0.05 + 0.05*85/90},
		// Rank in the overflow bucket clamps to the last finite bound.
		{"overflow", hv(bounds, 0, 0, 0, 5), 0.99, 0.1},
		{"overflow-tail", hv(bounds, 50, 0, 0, 50), 0.99, 0.1},
	}
	for _, c := range cases {
		if got := c.h.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: Quantile(%v) = %v, want %v", c.name, c.q, got, c.want)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	empty := HistogramValue{Bounds: DefBuckets, Buckets: make([]uint64, len(DefBuckets)+1)}
	if got := empty.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram Quantile = %v, want NaN", got)
	}
	h := hv([]float64{1}, 10, 0)
	if got := h.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("Quantile(NaN) = %v, want NaN", got)
	}
	if got := h.Quantile(-0.1); !math.IsInf(got, -1) {
		t.Errorf("Quantile(-0.1) = %v, want -Inf", got)
	}
	if got := h.Quantile(1.1); !math.IsInf(got, +1) {
		t.Errorf("Quantile(1.1) = %v, want +Inf", got)
	}
}

// TestQuantileAgainstObservations drives a live histogram through
// Observe and checks the estimator lands inside the right bucket for a
// known distribution.
func TestQuantileAgainstObservations(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_test_seconds", nil)
	for i := 0; i < 900; i++ {
		h.Observe(0.003) // (0.0025, 0.005]
	}
	for i := 0; i < 100; i++ {
		h.Observe(0.2) // (0.1, 0.25]
	}
	snap := r.Snapshot()
	val, ok := snap.Histogram("q_test_seconds")
	if !ok || val.Count != 1000 {
		t.Fatalf("histogram lookup ok=%v count=%d", ok, val.Count)
	}
	p50 := val.Quantile(0.5)
	if p50 <= 0.0025 || p50 > 0.005 {
		t.Errorf("p50 = %v, want within (0.0025, 0.005]", p50)
	}
	p99 := val.Quantile(0.99)
	if p99 <= 0.1 || p99 > 0.25 {
		t.Errorf("p99 = %v, want within (0.1, 0.25]", p99)
	}
}
