package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("lines_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("open_states")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestResolutionReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("produced", "topic", "logs", "partition", "0")
	b := r.Counter("produced", "partition", "0", "topic", "logs") // reordered labels
	if a != b {
		t.Fatal("label order changed instrument identity")
	}
	a.Inc()
	if got := r.Snapshot().Counter("produced", "topic", "logs", "partition", "0"); got != 1 {
		t.Fatalf("snapshot counter = %d, want 1", got)
	}
	if r.Counter("produced", "topic", "other", "partition", "0") == a {
		t.Fatal("distinct labels resolved to the same instrument")
	}
}

func TestOddLabelsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd label list did not panic")
		}
	}()
	NewRegistry().Counter("x", "only-a-key")
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(3)
	r.Histogram("z", nil).Observe(0.5)
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	hv := h.Value()
	if hv.Count != 5 {
		t.Fatalf("count = %d, want 5", hv.Count)
	}
	if want := 0.005 + 0.01 + 0.05 + 0.5 + 5; math.Abs(hv.Sum-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", hv.Sum, want)
	}
	// 0.005 and 0.01 land in the first bucket (<= 0.01), 0.05 in the
	// second, 0.5 in the third, 5 overflows.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if hv.Buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, hv.Buckets[i], w, hv.Buckets)
		}
	}
	// Re-resolution keeps the original bounds.
	if h2 := r.Histogram("latency_seconds", []float64{42}); h2 != h {
		t.Fatal("histogram re-resolution created a new instrument")
	}
}

func TestCounterSum(t *testing.T) {
	r := NewRegistry()
	r.Counter("bus_produced_total", "partition", "0").Add(3)
	r.Counter("bus_produced_total", "partition", "1").Add(4)
	r.Counter("bus_produced_totally_different").Add(100)
	if got := r.Snapshot().CounterSum("bus_produced_total"); got != 7 {
		t.Fatalf("CounterSum = %d, want 7", got)
	}
}

func TestSnapshotIsImmutable(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	s := r.Snapshot()
	c.Add(10)
	if got := s.Counter("x"); got != 1 {
		t.Fatalf("snapshot mutated after capture: %d", got)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("lines_total", "source", "web").Add(2)
	r.Gauge("open_states").Set(1)
	r.Histogram("lat_seconds", []float64{0.1}, "engine", "parse").Observe(0.05)
	var b strings.Builder
	if err := r.Snapshot().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lines_total{source="web"} 2`,
		`open_states 1`,
		`lat_seconds_count{engine="parse"} 1`,
		`lat_seconds_sum{engine="parse"} 0.05`,
		`lat_seconds_bucket{engine="parse",le="0.1"} 1`,
		`lat_seconds_bucket{engine="parse",le="+Inf"} 0`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	// Sorted output: lines must be in order.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] > lines[i] {
			t.Fatalf("text output not sorted: %q > %q", lines[i-1], lines[i])
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c", "w", "x").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", nil).Observe(float64(j) / 1000)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counter("c", "w", "x"); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := s.Gauge("g"); got != 8000 {
		t.Fatalf("gauge = %d, want 8000", got)
	}
	if hv, _ := s.Histogram("h"); hv.Count != 8000 {
		t.Fatalf("histogram count = %d, want 8000", hv.Count)
	}
}

func TestRecordingTracer(t *testing.T) {
	tr := NewRecordingTracer(func(source string, seq uint64) bool {
		return source == "web" && seq == 3
	})
	tr.Stamp("web", 1, StageAgent, "")
	tr.Stamp("web", 3, StageAgent, "topic=logs")
	tr.Stamp("db", 3, StageAgent, "")
	tr.Stamp("web", 3, StageParser, "pattern=1")
	stamps := tr.Stamps()
	if len(stamps) != 2 {
		t.Fatalf("stamps = %v, want 2 entries", stamps)
	}
	lines := tr.Lines()
	if lines[0] != "web#3 agent topic=logs" || lines[1] != "web#3 parser pattern=1" {
		t.Fatalf("lines = %v", lines)
	}
}
