package metrics

import (
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("lines_total", "tenant", "a").Add(5)
	r.Counter("lines_total", "tenant", "b").Add(7)
	r.Gauge("queue_depth").Set(42)
	h := r.Histogram("op_seconds", []float64{0.01, 0.1}, "stage", "parse")
	h.Observe(0.005)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5) // overflow

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE lines_total counter
lines_total{tenant="a"} 5
lines_total{tenant="b"} 7
# TYPE op_seconds histogram
op_seconds_bucket{stage="parse",le="0.01"} 2
op_seconds_bucket{stage="parse",le="0.1"} 3
op_seconds_bucket{stage="parse",le="+Inf"} 4
op_seconds_sum{stage="parse"} 5.06
op_seconds_count{stage="parse"} 4
# TYPE queue_depth gauge
queue_depth 42
`
	if got := b.String(); got != want {
		t.Errorf("WritePrometheus mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWritePrometheusBucketOrder pins the property that bucket lines
// come out in ascending bound order, not lexical order (le="10" must
// follow le="2.5"), and that the +Inf bucket equals the series count.
func TestWritePrometheusBucketOrder(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("wide_seconds", []float64{0.5, 2.5, 10})
	h.Observe(1)
	h.Observe(100)

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	i25 := strings.Index(out, `le="2.5"`)
	i10 := strings.Index(out, `le="10"`)
	iInf := strings.Index(out, `le="+Inf"`)
	if i25 < 0 || i10 < 0 || iInf < 0 {
		t.Fatalf("missing bucket lines:\n%s", out)
	}
	if !(i25 < i10 && i10 < iInf) {
		t.Errorf("bucket lines out of ascending order:\n%s", out)
	}
	if !strings.Contains(out, `wide_seconds_bucket{le="+Inf"} 2`) {
		t.Errorf("+Inf bucket should equal count:\n%s", out)
	}
}
