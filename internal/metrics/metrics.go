// Package metrics is the pipeline-wide observability registry: atomic
// counters, gauges, and histograms with named labels, an immutable
// Snapshot for tests and the dashboard, and the Tracer hook that stamps a
// log line's journey through the processing stages (tracer.go).
//
// LogLens is itself an observability system, so its own internals — parse
// hit/miss rates, per-stage latency, state-map occupancy, bus lag — must
// be cheap to observe. The registry is dependency-free (stdlib only) and
// built for hot paths: instruments are resolved once (a map lookup under a
// lock) and then held as handles whose operations are single atomic
// instructions, so a counter increment costs a few nanoseconds and the
// instrumented components keep the "fast as the hardware allows" budget.
//
// Conventions (see DESIGN.md "Metrics and tracing"):
//
//   - Names are snake_case with a _total suffix for counters and a unit
//     suffix for histograms (_seconds, _size).
//   - Labels are passed as alternating key, value pairs and are part of
//     the instrument identity; they are canonicalized by sorting on key,
//     so Counter("x", "a", "1", "b", "2") and Counter("x", "b", "2", "a",
//     "1") resolve to the same instrument.
//   - A nil *Registry is a valid no-op sink: every resolution method on a
//     nil receiver returns a shared throwaway instrument, so optional
//     instrumentation needs no nil checks at call sites.
//
// Components resolve their handles in constructors or Instrument methods
// and the driver reads a consistent view via Snapshot, which makes test
// assertions exact: under the fake clock (internal/clock) every duration
// observation is a deterministic function of the driven timeline.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default histogram bounds, in seconds, spanning the
// latencies the pipeline exhibits: sub-millisecond micro-batch hops up to
// multi-second stalls.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is an atomic fixed-bucket histogram. Observations land in the
// first bucket whose upper bound is >= the value; values beyond the last
// bound land in the implicit overflow bucket.
type Histogram struct {
	name   string // metric name without labels, for text rendering
	labels string // canonical label suffix ("{k=\"v\"}" or "")
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is overflow
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns an immutable snapshot of the histogram.
func (h *Histogram) Value() HistogramValue {
	hv := HistogramValue{
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sum.Load()),
		Bounds:  h.bounds,
		Buckets: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		hv.Buckets[i] = h.counts[i].Load()
	}
	return hv
}

// HistogramValue is an immutable histogram snapshot. Buckets are
// non-cumulative; Buckets[len(Bounds)] is the overflow bucket.
type HistogramValue struct {
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"`
}

// Registry holds named instruments. All methods are safe for concurrent
// use; resolution methods return the existing instrument when the (name,
// labels) identity is already registered. A nil *Registry is a valid
// no-op sink.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Shared sinks for the nil-registry case: written, never read.
var (
	nopCounter   = &Counter{}
	nopGauge     = &Gauge{}
	nopHistogram = newHistogram("nop", "", DefBuckets)
)

// key canonicalizes (name, label pairs) into "name{k=\"v\",...}" with the
// pairs sorted by key. labels must have even length.
func key(name string, labels []string) (full, suffix string) {
	if len(labels) == 0 {
		return name, ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("metrics: odd label list for %q: %v", name, labels))
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, pair{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return name + b.String(), b.String()
}

// Counter resolves (registering if needed) the counter with the given
// name and label pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nopCounter
	}
	k, _ := key(name, labels)
	r.mu.RLock()
	c, ok := r.counters[k]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[k]; ok {
		return c
	}
	c = &Counter{}
	r.counters[k] = c
	return c
}

// Gauge resolves (registering if needed) the gauge with the given name
// and label pairs.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nopGauge
	}
	k, _ := key(name, labels)
	r.mu.RLock()
	g, ok := r.gauges[k]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[k]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[k] = g
	return g
}

// Histogram resolves (registering if needed) the histogram with the given
// name, bucket upper bounds (nil selects DefBuckets), and label pairs.
// Bounds are fixed at first registration; later resolutions reuse them.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nopHistogram
	}
	k, suffix := key(name, labels)
	r.mu.RLock()
	h, ok := r.hists[k]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[k]; ok {
		return h
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	h = newHistogram(name, suffix, bounds)
	r.hists[k] = h
	return h
}

func newHistogram(name, suffix string, bounds []float64) *Histogram {
	return &Histogram{
		name:   name,
		labels: suffix,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Snapshot is an immutable, consistent-enough view of every instrument:
// each value is read atomically; the set of instruments is captured under
// the registry lock. Keys are the canonical "name{labels}" identities.
type Snapshot struct {
	Counters   map[string]uint64         `json:"counters"`
	Gauges     map[string]int64          `json:"gauges"`
	Histograms map[string]HistogramValue `json:"histograms"`
}

// Snapshot captures the current value of every registered instrument. A
// nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramValue),
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range r.hists {
		s.Histograms[k] = h.Value()
	}
	return s
}

// Counter returns the snapshot value of a counter (zero if absent).
func (s Snapshot) Counter(name string, labels ...string) uint64 {
	k, _ := key(name, labels)
	return s.Counters[k]
}

// Gauge returns the snapshot value of a gauge (zero if absent).
func (s Snapshot) Gauge(name string, labels ...string) int64 {
	k, _ := key(name, labels)
	return s.Gauges[k]
}

// Histogram returns the snapshot value of a histogram.
func (s Snapshot) Histogram(name string, labels ...string) (HistogramValue, bool) {
	k, _ := key(name, labels)
	hv, ok := s.Histograms[k]
	return hv, ok
}

// CounterSum sums every counter whose name matches regardless of labels —
// the aggregate view over labeled families (e.g. bus_produced_total
// across all topic-partitions).
func (s Snapshot) CounterSum(name string) uint64 {
	var total uint64
	for k, v := range s.Counters {
		if k == name || strings.HasPrefix(k, name+"{") {
			total += v
		}
	}
	return total
}

// WriteText renders the snapshot in expvar-style text, one instrument per
// line, sorted by key: "name{labels} value". Histograms expand into
// name_count, name_sum, and per-bucket name_bucket{...,le="bound"} lines.
func (s Snapshot) WriteText(w io.Writer) error {
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms)*4)
	for k, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, hv := range s.Histograms {
		name, suffix := k, ""
		if i := strings.IndexByte(k, '{'); i >= 0 {
			name, suffix = k[:i], k[i:]
		}
		lines = append(lines, fmt.Sprintf("%s_count%s %d", name, suffix, hv.Count))
		lines = append(lines, fmt.Sprintf("%s_sum%s %g", name, suffix, hv.Sum))
		for i, b := range hv.Bounds {
			lines = append(lines, fmt.Sprintf("%s_bucket%s %d", name, bucketSuffix(suffix, fmt.Sprintf("%g", b)), hv.Buckets[i]))
		}
		lines = append(lines, fmt.Sprintf("%s_bucket%s %d", name, bucketSuffix(suffix, "+Inf"), hv.Buckets[len(hv.Bounds)]))
	}
	sort.Strings(lines)
	for _, line := range lines {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// bucketSuffix splices an le="bound" label into an existing label suffix.
func bucketSuffix(suffix, bound string) string {
	le := fmt.Sprintf("le=%q", bound)
	if suffix == "" {
		return "{" + le + "}"
	}
	return suffix[:len(suffix)-1] + "," + le + "}"
}
