package metrics

import (
	"testing"
	"time"
)

// The registry lives on every hot path of the pipeline, so its costs are
// asserted in BENCH_PR2.txt: a counter increment must stay within a few
// nanoseconds and a disabled (nil) tracer must cost zero allocations.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("bench_gauge")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}

// BenchmarkCounterResolve measures the cold path: callers are expected to
// resolve once and hold the handle, but resolution must still be cheap
// enough for per-anomaly label lookups.
func BenchmarkCounterResolve(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("bench_total", "topic", "logs", "partition", "0")
	}
}

// BenchmarkDisabledTracer is the instrumented-component idiom with tracing
// off: a nil interface check and nothing else. Must be ~0 ns, 0 allocs.
func BenchmarkDisabledTracer(b *testing.B) {
	var tr Tracer
	src, seq := "web", uint64(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr != nil {
			tr.Stamp(src, seq, StageParser, "pattern=1")
		}
	}
}

func BenchmarkSnapshot(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 64; i++ {
		r.Counter("c", "i", string(rune('a'+i%26)), "j", string(rune('a'+i/26))).Inc()
	}
	r.Histogram("h", nil).Observe(0.01)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}

func BenchmarkHistogramObserveSince(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", nil)
	start := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Since(start).Seconds())
	}
}
