package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the snapshot in Prometheus text exposition
// format (version 0.0.4): one `# TYPE` header per metric family,
// series sorted within the family, families sorted by name. It differs
// from WriteText in the two ways a scraper cares about: histogram
// `_bucket` series carry *cumulative* counts (each le bucket includes
// everything below it, and le="+Inf" equals `_count`), and every family
// declares its type so counters survive restarts as rates. Bucket lines
// are emitted in ascending bound order — not lexically sorted, which
// would put le="10" before le="2.5". Canonical keys already hold labels
// sorted and %q-quoted, which is exactly the exposition-format label
// syntax, so series lines reuse them verbatim.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	// family name -> instrument type -> sorted member keys.
	fams := make(map[string]string)
	members := make(map[string][]string)
	collect := func(k, typ string) {
		name := k
		if i := strings.IndexByte(k, '{'); i >= 0 {
			name = k[:i]
		}
		if _, ok := fams[name]; !ok {
			fams[name] = typ
		}
		members[name] = append(members[name], k)
	}
	for k := range s.Counters {
		collect(k, "counter")
	}
	for k := range s.Gauges {
		collect(k, "gauge")
	}
	for k := range s.Histograms {
		collect(k, "histogram")
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		typ := fams[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ); err != nil {
			return err
		}
		keys := members[name]
		sort.Strings(keys)
		for _, k := range keys {
			var err error
			switch typ {
			case "counter":
				_, err = fmt.Fprintf(w, "%s %d\n", k, s.Counters[k])
			case "gauge":
				_, err = fmt.Fprintf(w, "%s %d\n", k, s.Gauges[k])
			case "histogram":
				err = writePromHistogram(w, name, k, s.Histograms[k])
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHistogram emits one histogram series as cumulative _bucket
// lines in bound order, then _sum and _count.
func writePromHistogram(w io.Writer, name, k string, hv HistogramValue) error {
	suffix := ""
	if i := strings.IndexByte(k, '{'); i >= 0 {
		suffix = k[i:]
	}
	var cum uint64
	for i, b := range hv.Bounds {
		cum += hv.Buckets[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketSuffix(suffix, fmt.Sprintf("%g", b)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketSuffix(suffix, "+Inf"), hv.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, suffix, hv.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, hv.Count)
	return err
}
