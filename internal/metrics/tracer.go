package metrics

import (
	"fmt"
	"sync"
)

// Stage names stamped along a log line's journey through the pipeline, in
// causal order: the agent ships the line, the log manager consumes it off
// the bus, the streaming engine routes it to a partition, the parser
// renders a verdict, the sequence detector transitions, and any resulting
// anomaly is emitted at the sink.
const (
	StageAgent     = "agent"
	StageBus       = "bus"
	StagePartition = "partition"
	StageParser    = "parser"
	StageDetect    = "seqdetect"
	StageEmit      = "anomaly"
)

// Tracer receives stage stamps for log lines identified by (source, seq) —
// the identity agents attach at ship time and every stage can recover.
// Implementations must be safe for concurrent use: stamps for different
// lines arrive from different partitions. Stamps for ONE line are causally
// ordered (each stage happens-before the next), so a tracer filtered to a
// single line records its journey in order.
//
// Components hold a Tracer field that is nil when tracing is disabled; the
// nil check is the only cost on the hot path (no allocations, no calls).
type Tracer interface {
	Stamp(source string, seq uint64, stage, detail string)
}

// TraceStamp is one recorded stage stamp.
type TraceStamp struct {
	Source string
	Seq    uint64
	Stage  string
	Detail string
}

// String renders the stamp in the stable one-line form used by golden
// files: "source#seq stage detail" (trailing space trimmed when detail is
// empty).
func (s TraceStamp) String() string {
	if s.Detail == "" {
		return fmt.Sprintf("%s#%d %s", s.Source, s.Seq, s.Stage)
	}
	return fmt.Sprintf("%s#%d %s %s", s.Source, s.Seq, s.Stage, s.Detail)
}

// RecordingTracer accumulates stamps, optionally filtered to the lines a
// match function selects. It is safe for concurrent use.
type RecordingTracer struct {
	mu     sync.Mutex
	match  func(source string, seq uint64) bool
	stamps []TraceStamp
}

// NewRecordingTracer returns a tracer recording every stamp for which
// match returns true (nil records everything).
func NewRecordingTracer(match func(source string, seq uint64) bool) *RecordingTracer {
	return &RecordingTracer{match: match}
}

// Stamp implements Tracer.
func (t *RecordingTracer) Stamp(source string, seq uint64, stage, detail string) {
	if t.match != nil && !t.match(source, seq) {
		return
	}
	t.mu.Lock()
	t.stamps = append(t.stamps, TraceStamp{Source: source, Seq: seq, Stage: stage, Detail: detail})
	t.mu.Unlock()
}

// Stamps returns a copy of the recorded stamps in arrival order.
func (t *RecordingTracer) Stamps() []TraceStamp {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceStamp(nil), t.stamps...)
}

// Lines renders the recorded stamps one per line — the golden-file form.
func (t *RecordingTracer) Lines() []string {
	stamps := t.Stamps()
	out := make([]string, len(stamps))
	for i, s := range stamps {
		out[i] = s.String()
	}
	return out
}
