package core

import (
	"fmt"
	"testing"
	"time"

	"loglens/internal/experiments"
	"loglens/internal/logtypes"
)

var msBase = time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)

func msStamp(t time.Time) string { return t.Format("2006/01/02 15:04:05.000") }

func webTrain(n int) []logtypes.Log {
	var lines []string
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("rq-%05d", i)
		t0 := msBase.Add(time.Duration(i*10) * time.Second)
		lines = append(lines,
			fmt.Sprintf("%s request %s received path /p/%d", msStamp(t0), id, i%9),
			fmt.Sprintf("%s request %s served bytes %d", msStamp(t0.Add(time.Second)), id, 100+i),
		)
	}
	return experiments.ToLogs("web", lines)
}

func dbTrain(n int) []logtypes.Log {
	var lines []string
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("tx-%05d", i)
		t0 := msBase.Add(time.Duration(i*10) * time.Second)
		lines = append(lines,
			fmt.Sprintf("%s txn %s begin table t%d", msStamp(t0), id, i%7),
			fmt.Sprintf("%s txn %s commit rows %d", msStamp(t0.Add(time.Second)), id, i%50),
		)
	}
	return experiments.ToLogs("db", lines)
}

// TestPerSourceModels runs two sources with dedicated models through one
// pipeline: each source's logs must be parsed and sequence-checked under
// its own model (§II: the log manager identifies sources; models are
// per source).
func TestPerSourceModels(t *testing.T) {
	p, err := New(Config{DisableHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.TrainFor("web", "web-model", webTrain(200)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.TrainFor("db", "db-model", dbTrain(200)); err != nil {
		t.Fatal(err)
	}
	if p.ModelFor("web").ID != "web-model" || p.ModelFor("db").ID != "db-model" {
		t.Fatalf("model routing: web=%v db=%v", p.ModelFor("web"), p.ModelFor("db"))
	}

	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	web, _ := p.Agent("web", 0)
	db, _ := p.Agent("db", 0)

	tt := msBase.Add(time.Hour)
	// Normal traffic on both sources.
	web.Send(fmt.Sprintf("%s request rq-90000 received path /p/1", msStamp(tt)))
	web.Send(fmt.Sprintf("%s request rq-90000 served bytes 1", msStamp(tt.Add(time.Second))))
	db.Send(fmt.Sprintf("%s txn tx-90000 begin table t1", msStamp(tt)))
	db.Send(fmt.Sprintf("%s txn tx-90000 commit rows 3", msStamp(tt.Add(time.Second))))
	if err := p.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := p.AnomalyCount(); got != 0 {
		t.Fatalf("normal cross-source traffic flagged: %d", got)
	}

	// A db-format log arriving on the web source is unparsed under the
	// web model — per-source isolation.
	web.Send(fmt.Sprintf("%s txn tx-90001 begin table t1", msStamp(tt.Add(2*time.Second))))
	if err := p.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := p.UnparsedCount(); got != 1 {
		t.Fatalf("cross-source log not isolated: unparsed=%d", got)
	}

	// A stateful anomaly on db only.
	db.Send(fmt.Sprintf("%s txn tx-90002 commit rows 3", msStamp(tt.Add(3*time.Second)))) // missing begin
	if err := p.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := p.AnomalyCount(); got != 2 {
		t.Fatalf("anomalies = %d, want 2 (one unparsed + one missing-begin)", got)
	}
}

// TestSourceFallsBackToDefaultModel: a source without a dedicated model
// uses the default.
func TestSourceFallsBackToDefaultModel(t *testing.T) {
	p, err := New(Config{DisableHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Train("default-model", webTrain(100)); err != nil {
		t.Fatal(err)
	}
	if p.ModelFor("anything").ID != "default-model" {
		t.Fatal("fallback broken")
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	ag, _ := p.Agent("other-source", 0)
	tt := msBase.Add(time.Hour)
	ag.Send(fmt.Sprintf("%s request rq-1 received path /p/1", msStamp(tt)))
	ag.Send(fmt.Sprintf("%s request rq-1 served bytes 9", msStamp(tt.Add(time.Second))))
	if err := p.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if p.AnomalyCount() != 0 || p.UnparsedCount() != 0 {
		t.Errorf("default-model fallback failed: anomalies=%d unparsed=%d", p.AnomalyCount(), p.UnparsedCount())
	}
}
