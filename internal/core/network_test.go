package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"loglens/internal/experiments"
	"loglens/internal/testutil"
	"loglens/internal/wire"
)

// TestRemoteAgentOverTCP ships logs from a wire client into a listening
// pipeline — the §II deployment shape with agents on other machines.
func TestRemoteAgentOverTCP(t *testing.T) {
	p, err := New(Config{DisableHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	var train []string
	for i := 0; i < 100; i++ {
		t0 := msBase.Add(time.Duration(i*10) * time.Second)
		id := fmt.Sprintf("jb-%04d", i)
		train = append(train,
			fmt.Sprintf("%s job %s queued prio %d", msStamp(t0), id, i%4),
			fmt.Sprintf("%s job %s finished rc %d", msStamp(t0.Add(2*time.Second)), id, i%2),
		)
	}
	if _, _, err := p.Train("m", experiments.ToLogs("remote", train)); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	client, err := wire.Dial(addr, "remote")
	if err != nil {
		t.Fatal(err)
	}
	tt := msBase.Add(time.Hour)
	var lines []string
	// A normal remote trace plus a missing-begin trace.
	lines = append(lines,
		fmt.Sprintf("%s job jb-9000 queued prio 1", msStamp(tt)),
		fmt.Sprintf("%s job jb-9000 finished rc 0", msStamp(tt.Add(2*time.Second))),
		fmt.Sprintf("%s job jb-9001 finished rc 0", msStamp(tt.Add(3*time.Second))),
	)
	if _, err := client.Stream(context.Background(), lines); err != nil {
		t.Fatal(err)
	}
	// A remote heartbeat frame, too.
	if err := client.SendHeartbeat(tt.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := client.Flush(); err != nil {
		t.Fatal(err)
	}

	// The wire server hands frames to the bus asynchronously; wait for
	// them to land, then drain.
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		return p.logmgrLag() > 0 || p.logmgr.Received() >= 3
	}, "wire frames never reached the log manager")
	if err := p.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	client.Close()
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := p.AnomalyCount(); got != 1 {
		t.Fatalf("anomalies = %d, want 1 (the remote missing-begin trace)", got)
	}
	if p.UnparsedCount() != 0 {
		t.Errorf("unparsed = %d", p.UnparsedCount())
	}
}
