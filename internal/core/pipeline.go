// Package core wires the LogLens components of Figure 1 into a runnable
// real-time log-analysis service: agents ship raw logs over the bus, the
// log manager identifies sources and archives logs, the streaming engine
// runs the stateless parser and the stateful sequence detector per
// partition under a broadcast model, the heartbeat controller expires open
// states, the model manager/controller rebuild and hot-swap models with
// zero downtime, and anomalies land in the anomaly storage and user
// callbacks.
//
// This package is the public API of the library: construct a Pipeline,
// Train it on "correct" logs, Start it, and stream production logs in.
package core

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"loglens/internal/agent"
	"loglens/internal/anomaly"
	"loglens/internal/bus"
	"loglens/internal/clock"
	"loglens/internal/heartbeat"
	"loglens/internal/intake"
	"loglens/internal/latency"
	"loglens/internal/logmanager"
	"loglens/internal/logtypes"
	"loglens/internal/metrics"
	"loglens/internal/modelmgr"
	"loglens/internal/obs"
	"loglens/internal/parser"
	"loglens/internal/preprocess"
	"loglens/internal/recovery"
	"loglens/internal/seqdetect"
	"loglens/internal/store"
	"loglens/internal/stream"
	"loglens/internal/volume"
	"loglens/internal/wire"
)

// ModelBroadcastID is the broadcast-variable ID the default model is
// published under; per-source models use ModelBroadcastID + "@" + source
// (§V-B: partitioning groups logs with "the same model, source").
const ModelBroadcastID = "model"

func modelIDFor(source string) string {
	if source == "" {
		return ModelBroadcastID
	}
	return ModelBroadcastID + "@" + source
}

// AnomaliesIndex is the anomaly-storage index name.
const AnomaliesIndex = "anomalies"

// Config tunes a Pipeline. The zero value is usable.
type Config struct {
	// Partitions is the streaming parallelism (default 4).
	Partitions int
	// BatchInterval is the micro-batch window (default 10ms).
	BatchInterval time.Duration
	// Seq tunes the stateful detector.
	Seq seqdetect.Config
	// Volume tunes the log-volume detector (active only when the model
	// carries a rate profile; see BuilderConfig.VolumeWindow).
	Volume volume.Config
	// Builder tunes the model builder.
	Builder modelmgr.BuilderConfig
	// Heartbeat tunes the heartbeat controller.
	Heartbeat heartbeat.Config
	// DisableHeartbeat turns the controller off (the Figure 5 "without
	// HB" configuration).
	DisableHeartbeat bool
	// ArchiveLogs stores raw logs in the log storage.
	ArchiveLogs bool
	// StoreAnomalies writes anomalies to the anomaly storage (default
	// on; the throughput benches disable it).
	DisableAnomalyStorage bool
	// Clock is the time source threaded through the bus, the streaming
	// engines, and the heartbeat controller (default the wall clock).
	// Injecting a clock.Fake makes the pipeline's temporal behavior —
	// batch cadence, heartbeat emission — manually drivable in tests.
	Clock clock.Clock
	// Staged runs the parser and the sequence detector as separate
	// streaming stages connected through the bus (the Figure 1
	// deployment shape, components communicating over Kafka) instead of
	// fused into one operator. Fused is the default: lower latency, no
	// serialization; Staged scales the stages independently.
	Staged bool
	// Metrics is the observability registry threaded through every
	// component (bus, engines, parser, detector, heartbeat, model
	// manager). Nil creates a private registry; read it via
	// Pipeline.Metrics().
	Metrics *metrics.Registry
	// Tracer, when set, stamps traced lines at every pipeline stage
	// (agent → bus → partition → parser → seqdetect → anomaly). Nil
	// disables tracing at zero hot-path cost.
	Tracer metrics.Tracer
	// Ops is the ops plane (spans, flight recorder, health probes)
	// threaded through every component. Nil disables it at a nil-check's
	// cost; construct one with obs.New and serve it via the dashboard.
	Ops *obs.Ops
	// BusLagDegraded and BusLagUnhealthy are the bus-lag health-probe
	// thresholds in messages behind (defaults 1024 and 8192): past the
	// first the pipeline reports degraded, past the second unhealthy.
	BusLagDegraded int64
	BusLagUnhealthy int64
	// HeartbeatStale is how long a tracked source may go unobserved
	// before the heartbeat probe reports degraded (default 5 minutes; it
	// must stay below Heartbeat.ActivityWindow, past which the source is
	// forgotten and the probe recovers).
	HeartbeatStale time.Duration
	// Intake enables the network front door: syslog UDP/TCP listeners
	// and the HTTP bulk endpoint feeding the bus through the bounded
	// multi-tenant admission layer. The zero value disables every
	// listener. Clock, Metrics, and Events default to the pipeline's.
	Intake intake.Config
	// Recovery enables the crash-recovery plane: checkpoint/restore,
	// commit-gated at-least-once consumption, supervised restarts, and
	// the poison-record quarantine. See RecoveryConfig.
	Recovery RecoveryConfig
	// Storage enables the persistent segment-file store. See
	// StorageConfig; the zero value keeps storage in memory.
	Storage StorageConfig
	// SLOE2E is the end-to-end latency objective: every line whose
	// arrival→detector latency exceeds it increments
	// latency_slo_breach_total (the loglens -slo-e2e-ms flag). Zero
	// keeps the latency histograms but disables breach counting.
	SLOE2E time.Duration
	// DisableLatency turns off the per-stage latency histograms and
	// freshness watermarks (the BENCH_PR8 comparison knob). Default on:
	// the instrumentation is allocation-free and costs two clock reads
	// plus three histogram observations per line.
	DisableLatency bool
	// MaxBatch caps records per micro-batch (default 4096, threaded to
	// stream.Config.MaxBatch). The fake-clock latency tests use it to
	// close batches on an exact record count instead of the timer.
	MaxBatch int
	// Bus, when set, replaces the pipeline's private in-process bus with
	// an external broker — typically a netbus.Client pointed at a
	// `loglens broker` process (the -bus flag), turning this pipeline
	// into the worker tier of a multi-node deployment. The log manager,
	// the staged parsed-topic pump, the recovery commit gate, and the
	// control watcher all run unchanged against it. Nil keeps the
	// in-process bus (the single-node default).
	Bus bus.Broker
}

// Pipeline is a running LogLens deployment.
type Pipeline struct {
	cfg Config

	bus bus.Broker
	// localBus is the in-process broker backing bus when Config.Bus is
	// unset (nil when an external broker is plugged in).
	localBus *bus.Bus
	store    *store.Store
	engine *stream.Engine
	// detectEngine is the second stage of the staged topology (nil when
	// fused).
	detectEngine *stream.Engine
	hb           *heartbeat.Controller
	logmgr       *logmanager.Manager

	builder    *modelmgr.Builder
	manager    *modelmgr.Manager
	controller *modelmgr.Controller

	mu        sync.Mutex
	callbacks []func(anomaly.Record)
	current   *modelmgr.Model
	bySource  map[string]*modelmgr.Model
	running   bool

	anomalies       atomic.Uint64
	unparsed        atomic.Uint64
	forwarded       atomic.Uint64
	parsedForwarded atomic.Uint64

	// events is the ops-plane flight recorder (nil when Config.Ops is
	// unset).
	events *obs.FlightRecorder

	// Registry handles, resolved once at construction (the registry is
	// never nil: Config.Metrics defaults to a private one).
	reg           *metrics.Registry
	linesTotal    *metrics.Counter
	hbTotal       *metrics.Counter
	parsedTotal   *metrics.Counter
	unparsedTotal *metrics.Counter
	lineSeconds   *metrics.Histogram

	// lat is the latency/freshness tracker (nil when
	// Config.DisableLatency is set; every method no-ops on nil).
	lat *latency.Tracker

	cancel       context.CancelFunc
	wg           sync.WaitGroup
	runErr       chan error
	pumpDone     chan struct{}
	pumpExited   chan struct{}
	logmgrExited chan struct{}

	wireServers []*wire.Server

	// intakeSvc is the network front door for the current run (nil until
	// Start with Config.Intake enabled; a fresh service per Start so
	// stop/restore/restart works).
	intakeSvc *intake.Service
	intakeCfg intake.Config

	// Recovery plane (nil/zero unless Config.Recovery is enabled).
	ckpt             *recovery.Manager
	quarantine       *recovery.Quarantine
	quarantined      atomic.Uint64
	quarantinedTotal *metrics.Counter
	commits          *commitTracker
	parsedCommits    *commitTracker
	commitsOn        atomic.Bool
	pumpPaused       atomic.Bool
	pumpIdle         atomic.Bool
	killed           atomic.Bool
	engineCancel     context.CancelFunc
	ckptMu           sync.Mutex // serializes Checkpoint calls
	ckptStatusMu     sync.Mutex
	ckptLastGen      uint64
	ckptLastErr      error
}

// New constructs a Pipeline with its own bus and storage.
func New(cfg Config) (*Pipeline, error) {
	if cfg.Clock == nil {
		cfg.Clock = clock.New()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.BusLagDegraded <= 0 {
		cfg.BusLagDegraded = 1024
	}
	if cfg.BusLagUnhealthy <= 0 {
		cfg.BusLagUnhealthy = 8192
	}
	if cfg.HeartbeatStale <= 0 {
		cfg.HeartbeatStale = 5 * time.Minute
	}
	st, err := openStore(cfg)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:      cfg,
		bus:      cfg.Bus,
		store:    st,
		bySource: make(map[string]*modelmgr.Model),
		runErr:   make(chan error, 1),
		reg:      cfg.Metrics,
		events:   obs.EventsOf(cfg.Ops),
	}
	if p.bus == nil {
		p.localBus = bus.NewWithClock(cfg.Clock)
		p.bus = p.localBus
	}
	p.linesTotal = p.reg.Counter("core_lines_total")
	p.hbTotal = p.reg.Counter("core_heartbeats_total")
	p.parsedTotal = p.reg.Counter("core_parsed_total")
	p.unparsedTotal = p.reg.Counter("core_unparsed_total")
	p.lineSeconds = p.reg.Histogram("core_line_seconds", nil)
	if !cfg.DisableLatency {
		parts := cfg.Partitions
		if parts <= 0 {
			parts = 4 // stream.Config's default
		}
		p.lat = latency.New(p.reg, cfg.Clock, parts, cfg.SLOE2E)
	}
	// Instrumentation hooks are optional broker capabilities: the
	// in-process bus and the netbus client both expose them, but the
	// Broker interface stays transport-minimal.
	if mb, ok := p.bus.(interface{ SetMetrics(*metrics.Registry) }); ok {
		mb.SetMetrics(p.reg)
	}
	if rb, ok := p.bus.(interface{ SetRecorder(*obs.FlightRecorder) }); ok {
		rb.SetRecorder(p.events)
	}
	p.builder = modelmgr.NewBuilder(cfg.Builder)
	p.manager = modelmgr.NewManager(p.store, p.builder)
	p.manager.Instrument(p.reg)
	p.manager.SetRecorder(p.events)
	p.controller, err = modelmgr.NewController(p.bus)
	if err != nil {
		return nil, err
	}
	p.controller.SetMetrics(p.reg)
	if !cfg.DisableHeartbeat {
		p.hb = heartbeat.New(cfg.Heartbeat)
		p.hb.SetClock(cfg.Clock)
		p.hb.Instrument(p.reg)
		p.hb.SetOps(cfg.Ops)
	}
	if cfg.Recovery.enabled() {
		if err := p.initRecovery(); err != nil {
			return nil, err
		}
	}
	engineCfg := stream.Config{
		Partitions:    cfg.Partitions,
		BatchInterval: cfg.BatchInterval,
		MaxBatch:      cfg.MaxBatch,
		Clock:         cfg.Clock,
		Metrics:       p.reg,
		Ops:           cfg.Ops,
	}
	if p.ckpt != nil {
		engineCfg.PanicHook = p.onOperatorPanic
	}
	// The freshness gauges re-age at the barrier of the engine that
	// closes the line path (the detect stage when staged), so lag keeps
	// growing while that stage is idle or stuck.
	var onBarrier func()
	if p.lat != nil {
		onBarrier = p.lat.Refresh
	}
	if cfg.Staged {
		engineCfg.Name = "parse"
		if p.commits != nil {
			engineCfg.BatchHook = p.commits.flush
		}
		p.engine = stream.New(engineCfg, p.parseOperator)
		p.engine.SetSink(p.parseSink)
		engineCfg.Name = "detect"
		engineCfg.OnBarrier = onBarrier
		if p.parsedCommits != nil {
			engineCfg.BatchHook = p.parsedCommits.flush
		}
		p.detectEngine = stream.New(engineCfg, p.detectOperator)
		p.detectEngine.SetSink(p.sink)
	} else {
		engineCfg.Name = "main"
		engineCfg.OnBarrier = onBarrier
		if p.commits != nil {
			engineCfg.BatchHook = p.commits.flush
		}
		p.engine = stream.New(engineCfg, p.operator)
		p.engine.SetSink(p.sink)
	}
	lmCfg := logmanager.Config{
		ArchiveLogs:  cfg.ArchiveLogs,
		Metrics:      p.reg,
		Tracer:       cfg.Tracer,
		ForwardBatch: p.forwardBatch,
	}
	if p.lat != nil {
		lmCfg.OnAdmit = p.lat.NoteIngest
	}
	if p.commits != nil {
		// At-least-once intake: the consumer commits nothing on its own;
		// every poll batch becomes a pending commit gated on the engine's
		// resolved watermark.
		lmCfg.ManualCommit = true
		// The watermark must be in the engine's frontier unit (accepted
		// seqs): heartbeats increment p.forwarded but are seq-less in the
		// engine, so a forwarded-based watermark would sit permanently
		// above the frontier after the first live heartbeat and the
		// offsets behind it would never commit.
		lmCfg.OnBatch = func(msgs []bus.Message) {
			p.commits.register(msgs, p.engine.Accepted())
		}
	}
	p.logmgr = logmanager.New(p.bus, p.store, lmCfg, p.forward)
	// Heartbeats arrive tagged on the data channel (§V-B) and become
	// heartbeat records fanned to every partition of the stateful stage.
	p.logmgr.OnHeartbeat(func(source string, t time.Time) {
		p.hbTotal.Inc()
		if p.detectEngine != nil {
			p.parsedForwarded.Add(1)
			p.detectEngine.Send(stream.Record{Key: source, Time: t, Heartbeat: true})
			return
		}
		p.forwarded.Add(1)
		p.engine.Send(stream.Record{Key: source, Time: t, Heartbeat: true})
	})
	if cfg.Intake.Enabled() {
		p.intakeCfg = cfg.Intake
		if p.intakeCfg.Clock == nil {
			p.intakeCfg.Clock = cfg.Clock
		}
		if p.intakeCfg.Metrics == nil {
			p.intakeCfg.Metrics = p.reg
		}
		if p.intakeCfg.Events == nil {
			p.intakeCfg.Events = p.events
		}
	}
	p.registerProbes()
	return p, nil
}

// Intake exposes the running intake service (nil until Start with
// Config.Intake enabled). The dashboard serves its Stats at /api/intake.
func (p *Pipeline) Intake() *intake.Service {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.intakeSvc
}

// publishIntake is the intake pump's delivery callback: admitted lines
// enter the bus on the logs data channel exactly as agent-shipped lines
// do, with the tenant as the source. The admission→publish delta is the
// intake stage of the latency plane: queue wait plus pump scheduling.
// The intake service stamps admission on a 1-in-16 per-tenant sample
// (zero otherwise), matching the sampled stage histograms downstream.
func (p *Pipeline) publishIntake(tenant string, seq uint64, raw []byte, admitted time.Time) {
	if p.lat != nil && !admitted.IsZero() {
		p.lat.Observe(latency.StageIntake, p.cfg.Clock.Since(admitted))
	}
	p.bus.Publish(agent.LogsTopic, tenant, raw, map[string]string{
		agent.HeaderSource: tenant,
		agent.HeaderSeq:    strconv.FormatUint(seq, 10),
	})
}

// Latency exposes the latency/freshness tracker (nil when
// Config.DisableLatency is set). The dashboard serves its percentiles
// and watermark table at /api/latency.
func (p *Pipeline) Latency() *latency.Tracker { return p.lat }

// Ops exposes the pipeline's ops plane (nil when disabled). The
// dashboard serves its spans, events, and health probes.
func (p *Pipeline) Ops() *obs.Ops { return p.cfg.Ops }

// Running reports whether the pipeline has been started and its engine
// loops are live.
func (p *Pipeline) Running() bool {
	p.mu.Lock()
	started := p.running
	p.mu.Unlock()
	if !started {
		return false
	}
	if !p.engine.Running() {
		return false
	}
	return p.detectEngine == nil || p.detectEngine.Running()
}

// registerProbes installs the per-component health probes (no-ops when
// the ops plane is off). Thresholds come from Config; DESIGN.md's "Ops
// plane" section documents the semantics.
func (p *Pipeline) registerProbes() {
	if p.cfg.Ops == nil || p.cfg.Ops.Health == nil {
		return
	}
	h := p.cfg.Ops.Health
	h.Register("pipeline", func() obs.ProbeResult {
		p.mu.Lock()
		started := p.running
		p.mu.Unlock()
		if !started {
			return obs.ProbeResult{Status: obs.Degraded, Detail: "pipeline not started"}
		}
		if !p.engine.Running() || (p.detectEngine != nil && !p.detectEngine.Running()) {
			return obs.ProbeResult{Status: obs.Unhealthy, Detail: "engine loop not running"}
		}
		return obs.ProbeResult{Status: obs.Healthy, Detail: "engine loops live"}
	})
	h.Register("bus", func() obs.ProbeResult {
		lag := p.logmgrLag()
		detail := fmt.Sprintf("log-manager lag %d (degraded ≥ %d, unhealthy ≥ %d)",
			lag, p.cfg.BusLagDegraded, p.cfg.BusLagUnhealthy)
		switch {
		case lag >= p.cfg.BusLagUnhealthy:
			return obs.ProbeResult{Status: obs.Unhealthy, Detail: detail}
		case lag >= p.cfg.BusLagDegraded:
			return obs.ProbeResult{Status: obs.Degraded, Detail: detail}
		}
		return obs.ProbeResult{Status: obs.Healthy, Detail: detail}
	})
	h.Register("heartbeat", func() obs.ProbeResult {
		if p.hb == nil {
			return obs.ProbeResult{Status: obs.Healthy, Detail: "heartbeat controller disabled"}
		}
		var worstSource string
		var worst time.Duration
		for source, idle := range p.hb.Staleness() {
			if idle > worst {
				worstSource, worst = source, idle
			}
		}
		if worst > p.cfg.HeartbeatStale {
			return obs.ProbeResult{Status: obs.Degraded, Detail: fmt.Sprintf(
				"source %q silent for %s (threshold %s)", worstSource, worst, p.cfg.HeartbeatStale)}
		}
		return obs.ProbeResult{Status: obs.Healthy, Detail: fmt.Sprintf(
			"%d tracked sources, max staleness %s", len(p.hb.Staleness()), worst)}
	})
	h.Register("broadcast", func() obs.ProbeResult {
		driver, workers := p.engine.BroadcastVersions(ModelBroadcastID)
		if driver == 0 {
			return obs.ProbeResult{Status: obs.Healthy, Detail: "no model broadcast yet"}
		}
		var maxSkew uint64
		for _, v := range workers {
			// Workers that have never pulled (v == 0) hold no stale
			// copy; a rebroadcast invalidated their caches.
			if v > 0 && driver-v > maxSkew {
				maxSkew = driver - v
			}
		}
		detail := fmt.Sprintf("driver at v%d, max worker skew %d", driver, maxSkew)
		// Skew of one version is the normal window between a
		// rebroadcast and the workers' next pull; beyond that a worker
		// has missed a whole update cycle.
		if maxSkew > 1 {
			return obs.ProbeResult{Status: obs.Degraded, Detail: detail}
		}
		return obs.ProbeResult{Status: obs.Healthy, Detail: detail}
	})
	if prober, ok := p.bus.(interface{ Probe() obs.ProbeResult }); ok {
		// An external broker (netbus.Client) reports its connectivity —
		// connected, backing off between reconnect attempts, or down.
		h.Register("netbus", prober.Probe)
	}
	if p.store.Persistent() {
		h.Register("storage", p.storageProbe)
	}
	if p.cfg.Intake.Enabled() {
		h.Register("intake", func() obs.ProbeResult {
			svc := p.Intake()
			if svc == nil {
				return obs.ProbeResult{Status: obs.Degraded, Detail: "intake not started"}
			}
			return svc.Probe()
		})
	}
	if p.ckpt != nil {
		h.Register("checkpoint", func() obs.ProbeResult {
			p.ckptStatusMu.Lock()
			gen, err := p.ckptLastGen, p.ckptLastErr
			p.ckptStatusMu.Unlock()
			switch {
			case err != nil:
				return obs.ProbeResult{Status: obs.Degraded,
					Detail: "last checkpoint failed: " + err.Error()}
			case gen == 0:
				return obs.ProbeResult{Status: obs.Healthy, Detail: "no checkpoint yet"}
			}
			return obs.ProbeResult{Status: obs.Healthy,
				Detail: fmt.Sprintf("checkpoint generation %d current", gen)}
		})
	}
}

// Bus exposes the in-process message bus (for agents and tools). Nil
// when the pipeline runs against an external broker (Config.Bus); use
// Broker for the transport-neutral handle.
func (p *Pipeline) Bus() *bus.Bus { return p.localBus }

// Broker exposes the broker the pipeline runs against — the in-process
// bus, or the external one installed via Config.Bus.
func (p *Pipeline) Broker() bus.Broker { return p.bus }

// Store exposes the log/model/anomaly storage (for the dashboard and
// tools).
func (p *Pipeline) Store() *store.Store { return p.store }

// Manager exposes the model manager.
func (p *Pipeline) Manager() *modelmgr.Manager { return p.manager }

// Controller exposes the model controller.
func (p *Pipeline) Controller() *modelmgr.Controller { return p.controller }

// Engine exposes the streaming engine (for metrics).
func (p *Pipeline) Engine() *stream.Engine { return p.engine }

// Metrics exposes the pipeline's observability registry (never nil). The
// dashboard serves its Snapshot at /api/metrics.
func (p *Pipeline) Metrics() *metrics.Registry { return p.reg }

// AnomalyCount returns the total anomalies reported so far.
func (p *Pipeline) AnomalyCount() uint64 { return p.anomalies.Load() }

// UnparsedCount returns the stateless (unparsed-log) anomaly count.
func (p *Pipeline) UnparsedCount() uint64 { return p.unparsed.Load() }

// OnAnomaly registers a callback invoked for every anomaly. Calls are
// serialized (the engine's sink barrier) but may run on any partition
// worker's goroutine.
func (p *Pipeline) OnAnomaly(fn func(anomaly.Record)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.callbacks = append(p.callbacks, fn)
}

// Model returns the currently installed default model.
func (p *Pipeline) Model() *modelmgr.Model {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.current
}

// ModelFor returns the model serving a source: its dedicated model if one
// is installed, else the default.
func (p *Pipeline) ModelFor(source string) *modelmgr.Model {
	p.mu.Lock()
	defer p.mu.Unlock()
	if m, ok := p.bySource[source]; ok {
		return m
	}
	return p.current
}

// Train builds a model from training logs, saves it in the model storage,
// and installs it. With the pipeline running the install is a
// zero-downtime rebroadcast.
func (p *Pipeline) Train(id string, logs []logtypes.Log) (*modelmgr.Model, *modelmgr.BuildReport, error) {
	m, report, err := p.builder.Build(id, logs)
	if err != nil {
		return nil, nil, err
	}
	if err := p.manager.Save(m); err != nil {
		return nil, nil, err
	}
	p.InstallModel(m)
	return m, report, nil
}

// TrainFor is Train for a source-dedicated model: logs from that source
// are analyzed with it, while other sources keep the default model.
func (p *Pipeline) TrainFor(source, id string, logs []logtypes.Log) (*modelmgr.Model, *modelmgr.BuildReport, error) {
	m, report, err := p.builder.Build(id, logs)
	if err != nil {
		return nil, nil, err
	}
	if err := p.manager.Save(m); err != nil {
		return nil, nil, err
	}
	p.InstallModelFor(source, m)
	return m, report, nil
}

// InstallModel makes m the active default model. While running, the swap
// is the §V-A rebroadcast: applied between micro-batches, no restart, no
// state loss.
func (p *Pipeline) InstallModel(m *modelmgr.Model) {
	p.installModel("", m)
}

// InstallModelFor installs a model dedicated to one source; other sources
// keep using the default model. A nil model removes the dedication (or,
// for the empty source, deletes the default model).
func (p *Pipeline) InstallModelFor(source string, m *modelmgr.Model) {
	p.installModel(source, m)
}

func (p *Pipeline) installModel(source string, m *modelmgr.Model) {
	p.mu.Lock()
	if source == "" {
		p.current = m
	} else if m == nil {
		delete(p.bySource, source)
	} else {
		p.bySource[source] = m
	}
	running := p.running
	p.mu.Unlock()
	if running {
		p.engine.Rebroadcast(modelIDFor(source), m)
		if p.detectEngine != nil {
			p.detectEngine.Rebroadcast(modelIDFor(source), m)
		}
	} else {
		p.engine.Broadcast(modelIDFor(source), m)
		if p.detectEngine != nil {
			p.detectEngine.Broadcast(modelIDFor(source), m)
		}
	}
}

// Agent creates a shipping agent for a source. The pipeline's tracer, if
// any, rides along so agent stamps open each traced line's journey.
func (p *Pipeline) Agent(source string, ratePerSec int) (*agent.Agent, error) {
	return agent.New(p.bus, agent.Config{
		Source:          source,
		RatePerSec:      ratePerSec,
		TopicPartitions: p.engine.Partitions(),
		Tracer:          p.cfg.Tracer,
	})
}

// Listen accepts remote agents over TCP (the §II deployment: agent
// daemons on other machines ship logs to the log manager). Frames are
// published onto the logs data channel exactly as local agents publish.
// It returns the bound address; Stop closes the listener.
func (p *Pipeline) Listen(addr string) (string, error) {
	if err := p.bus.CreateTopic(agent.LogsTopic, p.engine.Partitions()); err != nil {
		return "", err
	}
	srv := wire.NewServer(func(f wire.Frame) {
		if f.HB {
			p.publishHeartbeat(f.Source, f.Time)
			return
		}
		p.bus.Publish(agent.LogsTopic, f.Source, []byte(f.Raw), map[string]string{
			agent.HeaderSource: f.Source,
			agent.HeaderSeq:    strconv.FormatUint(f.Seq, 10),
		})
	})
	bound, err := srv.Listen(addr)
	if err != nil {
		return "", err
	}
	p.mu.Lock()
	p.wireServers = append(p.wireServers, srv)
	p.mu.Unlock()
	return bound, nil
}

// Start launches the service: the streaming engine, the log manager pump,
// the heartbeat controller, and the control-instruction watcher. It
// returns immediately; Stop shuts everything down.
func (p *Pipeline) Start() error {
	p.mu.Lock()
	if p.running {
		p.mu.Unlock()
		return fmt.Errorf("core: pipeline already running")
	}
	p.running = true
	p.mu.Unlock()

	// The logs topic must exist before consumers attach.
	if err := p.bus.CreateTopic(agent.LogsTopic, p.engine.Partitions()); err != nil {
		return err
	}

	if p.cfg.Intake.Enabled() {
		// A fresh service per run: intake sockets cannot be reopened after
		// a drain, so stop/restore/restart gets new ones.
		svc := intake.New(p.intakeCfg, p.publishIntake)
		if err := svc.Start(); err != nil {
			p.mu.Lock()
			p.running = false
			p.mu.Unlock()
			return err
		}
		p.mu.Lock()
		p.intakeSvc = svc
		p.mu.Unlock()
	}

	ctx, cancel := context.WithCancel(context.Background())
	p.cancel = cancel
	// The engines get their own cancellable context: orderly Stop drains
	// via Close, while Kill aborts mid-batch through the cancel.
	engineCtx, engineCancel := context.WithCancel(context.Background())
	p.engineCancel = engineCancel
	p.killed.Store(false)
	p.commitsOn.Store(true)

	mainEngineName := "main"
	if p.detectEngine != nil {
		mainEngineName = "parse"
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.runErr <- p.runSupervised("engine:"+mainEngineName, engineCtx, p.engine.Run)
	}()

	if p.detectEngine != nil {
		if err := p.bus.CreateTopic(ParsedTopic, p.engine.Partitions()); err != nil {
			return err
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.runSupervised("engine:detect", engineCtx, p.detectEngine.Run)
		}()
		p.pumpDone = make(chan struct{})
		p.pumpExited = make(chan struct{})
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer close(p.pumpExited)
			p.runSupervised("parsed-pump", ctx, func(context.Context) error {
				p.pumpParsed(p.pumpDone)
				return nil
			})
		}()
	}

	p.logmgrExited = make(chan struct{})
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer close(p.logmgrExited)
		p.runSupervised("log-manager", ctx, p.logmgr.Run)
	}()

	if p.ckpt != nil && p.cfg.Recovery.Interval > 0 {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			t := p.cfg.Clock.NewTicker(p.cfg.Recovery.Interval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C():
					p.Checkpoint()
				}
			}
		}()
	}

	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.controller.Watch(ctx, "pipeline", p.applyInstruction)
	}()

	if p.hb != nil {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.hb.Run(ctx, func(hb heartbeat.Heartbeat) {
				p.publishHeartbeat(hb.Source, hb.Time)
			})
		}()
	}
	return nil
}

// publishHeartbeat ships a heartbeat-tagged message on the logs data
// channel, exactly as the external heartbeat controller does (§V-B). The
// log manager recognizes the tag and the custom partitioner fans the
// resulting record to every partition.
func (p *Pipeline) publishHeartbeat(source string, t time.Time) {
	p.bus.Publish(agent.LogsTopic, source, nil, map[string]string{
		agent.HeaderSource:    source,
		agent.HeaderHeartbeat: t.Format(time.RFC3339Nano),
	})
}

// Drain waits until every log shipped so far has flowed through the bus
// into the engine, then waits for the engine to go idle. Call it before
// reading exact anomaly counts in batch experiments.
func (p *Pipeline) Drain(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	// Phase 1: bus drained into the engine. Negative lag counts as
	// drained — a group restored from a checkpoint can sit ahead of a
	// rebuilt in-memory topic (heartbeats interleave on the data topic,
	// so absolute offsets are not stable across a re-streamed run), and
	// a consumer ahead of the log has nothing left to read.
	for {
		if p.logmgrLag() <= 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("core: drain timed out with bus lag %d", p.logmgrLag())
		}
		time.Sleep(time.Millisecond)
	}
	// Phase 2: engine has processed everything forwarded.
	for {
		m := p.engine.Metrics()
		if m.Records >= p.forwarded.Load() {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("core: drain timed out with %d/%d records", m.Records, p.forwarded.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if p.detectEngine == nil {
		return nil
	}
	// Staged phases: the parsed topic drained into the detector stage,
	// and the detector stage has processed everything.
	for {
		if p.parsedLag() <= 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("core: drain timed out with parsed lag %d", p.parsedLag())
		}
		time.Sleep(time.Millisecond)
	}
	for {
		m := p.detectEngine.Metrics()
		if m.Records >= p.parsedForwarded.Load() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("core: drain timed out with %d/%d detector records", m.Records, p.parsedForwarded.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// InjectHeartbeat ships one heartbeat with an explicit log time through
// the data channel — the deterministic replacement for the wall-clock
// controller in replay experiments.
func (p *Pipeline) InjectHeartbeat(source string, t time.Time) {
	p.publishHeartbeat(source, t)
}

// intakeDrainTimeout bounds how long Stop waits for in-flight intake
// connections and the intake queue to drain before shedding the rest
// (accounted under reason "shutdown").
const intakeDrainTimeout = 10 * time.Second

// Stop shuts the pipeline down: input closes, in-flight batches finish,
// stages drain front to back, background loops exit.
func (p *Pipeline) Stop() error {
	p.mu.Lock()
	if !p.running {
		p.mu.Unlock()
		return nil
	}
	p.running = false
	servers := p.wireServers
	p.wireServers = nil
	svc := p.intakeSvc
	p.mu.Unlock()
	for _, srv := range servers {
		srv.Close()
	}
	if svc != nil {
		// Drain the front door before the engines: in-flight connections
		// finish, the intake queue empties into the bus, and the stages
		// below then see every admitted line before they close.
		ctx, cancel := context.WithTimeout(context.Background(), intakeDrainTimeout)
		svc.Shutdown(ctx)
		cancel()
	}
	p.cancel()
	// Front-to-back: the log manager must finish its in-flight poll
	// batch and exit before the engine closes, or a batch counted as
	// forwarded could land on an already-closed engine and be rejected —
	// silently breaking the lines == parsed + unparsed balance.
	if p.logmgrExited != nil {
		<-p.logmgrExited
	}
	p.engine.Close()
	err := <-p.runErr
	if p.detectEngine != nil {
		// The parse stage has emitted everything; let the pump drain
		// the parsed topic, then close the detector stage.
		deadline := time.Now().Add(time.Minute)
		for p.parsedLag() > 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		close(p.pumpDone)
		<-p.pumpExited
		p.detectEngine.Close()
	}
	p.wg.Wait()
	if p.engineCancel != nil {
		p.engineCancel()
	}
	// Everything drained: seal outstanding storage state so a clean stop
	// leaves no WAL to replay.
	if serr := p.store.Close(); err == nil {
		err = serr
	}
	return err
}

// AcceptUnparsed is the operator feedback loop of §VIII: lines the parser
// flagged as unparsed anomalies but a human marked as normal are clustered
// into new patterns, folded into a clone of the default model, and
// installed with zero downtime. It returns the number of patterns added
// and the new model.
func (p *Pipeline) AcceptUnparsed(lines []string) (int, *modelmgr.Model, error) {
	p.mu.Lock()
	current := p.current
	p.mu.Unlock()
	if current == nil {
		return 0, nil, fmt.Errorf("core: no model installed")
	}
	next := current.Clone()
	next.ID = current.ID + "+accepted"
	added, err := next.AcceptNormal(lines, p.cfg.Builder.Preprocessor, p.cfg.Builder.Logmine)
	if err != nil {
		return 0, nil, err
	}
	if added == 0 {
		return 0, current, nil
	}
	if err := p.manager.Save(next); err != nil {
		return 0, nil, err
	}
	p.InstallModel(next)
	return added, next, nil
}

// Anomalies queries the anomaly storage.
func (p *Pipeline) Anomalies(q store.Query) []store.Hit {
	return p.store.Index(AnomaliesIndex).Search(q)
}

// PatternCounts aggregates per-pattern parse counts across all partitions
// and sources (taken at a micro-batch barrier).
func (p *Pipeline) PatternCounts() map[int]uint64 {
	total := make(map[int]uint64)
	p.engine.Inspect(func(partition int, states *stream.StateMap) {
		states.Range(func(key string, v any) bool {
			if st, ok := v.(*coreOpState); ok && st.parser != nil {
				for id, n := range st.parser.PatternCounts() {
					total[id] += n
				}
			}
			return true
		})
	})
	return total
}

// DetectorStats aggregates the sequence detectors' counters across all
// partitions and sources (taken at a micro-batch barrier).
func (p *Pipeline) DetectorStats() seqdetect.Stats {
	var total seqdetect.Stats
	e := p.engine
	if p.detectEngine != nil {
		e = p.detectEngine
	}
	e.Inspect(func(partition int, states *stream.StateMap) {
		states.Range(func(key string, v any) bool {
			if st, ok := v.(*coreOpState); ok && st.detector != nil {
				s := st.detector.Stats()
				total.LogsProcessed += s.LogsProcessed
				total.LogsSkipped += s.LogsSkipped
				total.EventsClosed += s.EventsClosed
				total.EventsExpired += s.EventsExpired
				total.Anomalies += s.Anomalies
			}
			return true
		})
	})
	return total
}

// OpenStates counts the open (automaton, event) states held across all
// partitions and sources — the memory the heartbeat-driven expiry of §V-B
// keeps bounded. The count is taken at a micro-batch barrier, so it is
// consistent.
func (p *Pipeline) OpenStates() int {
	total := 0
	e := p.engine
	if p.detectEngine != nil {
		e = p.detectEngine
	}
	e.Inspect(func(partition int, states *stream.StateMap) {
		states.Range(func(key string, v any) bool {
			if st, ok := v.(*coreOpState); ok && st.detector != nil {
				total += st.detector.OpenStates()
			}
			return true
		})
	})
	return total
}

func (p *Pipeline) logmgrLag() int64 {
	c, err := p.bus.Subscribe("log-manager", agent.LogsTopic)
	if err != nil {
		return 0
	}
	return c.Lag()
}

// forward is the log manager's per-log downstream hook (the batched
// forwardBatch hook supersedes it on the poll path; this remains for
// callers outside the batching loop).
func (p *Pipeline) forward(l logtypes.Log) {
	p.forwarded.Add(1)
	p.linesTotal.Inc()
	p.engine.Send(stream.Record{Key: l.Source, Value: l, Time: l.Arrival})
}

// forwardBatch hands one poll batch of logs to the engine as a pooled
// record-slice hand-off: the engine splits it into per-partition slices
// at enqueue time and delivers each directly to that partition's worker
// queue — one queue send per touched partition instead of one per line.
// The engine takes ownership of the buffer.
func (p *Pipeline) forwardBatch(logs []logtypes.Log) {
	p.forwarded.Add(uint64(len(logs)))
	p.linesTotal.Add(uint64(len(logs)))
	buf := p.engine.RecordBuffer()
	for _, l := range logs {
		buf = append(buf, stream.Record{Key: l.Source, Value: l, Time: l.Arrival})
	}
	p.engine.SendBatch(buf)
}

// applyInstruction reacts to model-controller messages. Instructions with
// a Source target that source's dedicated model slot.
func (p *Pipeline) applyInstruction(ins modelmgr.Instruction) {
	switch ins.Op {
	case modelmgr.OpAdd, modelmgr.OpUpdate:
		m, err := p.manager.Load(ins.ModelID)
		if err != nil {
			p.events.Record(obs.EventRebroadcastFailed, ins.ModelID,
				string(ins.Op)+": "+err.Error(), 0)
			return
		}
		p.installModel(ins.Source, m)
	case modelmgr.OpDelete:
		p.mu.Lock()
		var match bool
		if ins.Source == "" {
			match = p.current != nil && p.current.ID == ins.ModelID
		} else {
			m := p.bySource[ins.Source]
			match = m != nil && m.ID == ins.ModelID
		}
		p.mu.Unlock()
		if match {
			p.installModel(ins.Source, nil)
		}
	}
}

// coreOpState is the per-partition processing state living in the
// engine's state map: parser and detector instances bound to the current
// model.
type coreOpState struct {
	model    *modelmgr.Model
	parser   *parser.Parser
	detector *seqdetect.Detector
	volume   *volume.Detector // nil unless the model carries a profile

	// modelID is the precomposed dedicated-broadcast ID for this state's
	// source (modelIDFor(source)), so the steady-state model resolution
	// needs no per-record string concatenation.
	modelID string

	// lat is the source's tenant freshness cell, resolved once at state
	// creation so the hot path pays two atomic stores, no map lookup.
	// Nil when the latency plane is disabled.
	lat *latency.Cell

	// tick drives the 1-in-16 deterministic sampling of the parse and
	// detect stage stamps: those stages are pure CPU between two clock
	// reads, so sampling keeps the histograms honest while amortizing
	// the extra reads to a fraction of a nanosecond per line. Worker
	// states are partition-confined, so no atomicity is needed.
	tick uint64

	// pl is the fused operator's parse scratch: ParseInto reuses its
	// field buffer, and seqdetect/volume copy what they keep, so the
	// steady-state line allocates no ParsedLog. The staged parse
	// operator must NOT use it — there the ParsedLog is emitted
	// downstream and outlives the record.
	pl logtypes.ParsedLog
}

// operator is the per-record ProcessFunc: stateless parse, then stateful
// sequence detection; heartbeats trigger open-state expiry. Each source
// gets its own parser/detector state bound to its effective model (the
// source's dedicated model, or the default).
func (p *Pipeline) operator(ctx *stream.Context, rec stream.Record) []any {
	source := rec.Key
	if l, ok := rec.Value.(logtypes.Log); ok {
		source = l.Source
	}
	// State-first lookup: Get does not retain its key, so the concat
	// stays on the stack and the steady state pays no allocation for
	// state addressing or model-ID composition.
	sv, _ := ctx.States().Get("__op@" + source)
	st, _ := sv.(*coreOpState)
	if st == nil {
		m := p.effectiveModel(ctx, source)
		if m == nil {
			return nil // no model (yet, or deleted): detectors idle
		}
		// The detection-side preprocessor must match the training
		// side (custom delimiters, split rules, timestamp formats),
		// with a fresh per-partition cache.
		pp := p.cfg.Builder.Preprocessor
		if pp == nil {
			pp = preprocess.New(nil, nil)
		}
		st = &coreOpState{
			model:    m,
			modelID:  modelIDFor(source),
			parser:   m.NewParser(pp.Clone()),
			detector: m.NewDetector(p.cfg.Seq),
		}
		st.parser.Instrument(p.reg)
		st.detector.Instrument(p.reg)
		st.detector.SetTracer(p.cfg.Tracer)
		st.detector.SetRecorder(p.events)
		if m.Volume != nil {
			st.volume = volume.New(m.Volume, p.cfg.Volume)
		}
		if p.lat != nil {
			st.lat = p.lat.Tenant(source)
		}
		ctx.States().Put("__op@"+source, st)
	} else if m := p.modelByID(ctx, st.modelID); m == nil {
		return nil // model deleted: detectors idle
	} else if st.model != m {
		// Zero-downtime model swap: same parser/detector objects,
		// state preserved, new rules.
		st.parser.SetPatterns(m.Patterns)
		st.detector.SetModel(m.Sequence)
		switch {
		case m.Volume == nil:
			st.volume = nil
		case st.volume == nil:
			st.volume = volume.New(m.Volume, p.cfg.Volume)
		default:
			st.volume.SetProfile(m.Volume)
		}
		st.model = m
	}

	if rec.Heartbeat {
		recs := st.detector.HeartbeatFor(rec.Key, rec.Time)
		if st.volume != nil {
			recs = append(recs, st.volume.Advance(rec.Time)...)
		}
		return wrapRecords(recs)
	}

	l, ok := rec.Value.(logtypes.Log)
	if !ok {
		return nil
	}
	if p.ckpt != nil {
		p.checkPoison(l)
	}
	if p.cfg.Tracer != nil {
		p.cfg.Tracer.Stamp(l.Source, l.Seq, metrics.StagePartition, "p="+strconv.Itoa(ctx.Partition()))
	}
	// Stage histograms ride a deterministic 1-in-16 per-source sample:
	// the deliver stage closes at the engine's batch pickup stamp (bus
	// publish → micro-batch collection → worker dispatch, shared by the
	// whole batch, so no clock read here), and the parse/detect stages
	// take their own stamps around the work. Everything that must be
	// per-line for correctness — e2e, SLO burn, freshness watermarks —
	// rides the single post-detect clock read that the disabled path
	// pays anyway, keeping the enabled plane within the benchguard
	// budget.
	var pickedUp time.Time
	sampled := false
	if p.lat != nil {
		sampled = st.tick&15 == 0
		st.tick++
		if sampled {
			p.lat.Observe(latency.StageDeliver, ctx.BatchStart().Sub(l.Arrival))
			pickedUp = p.cfg.Clock.Now()
		}
	}
	// ParseInto reuses the state's ParsedLog scratch (field buffer
	// included): safe here because the fused downstream consumers copy
	// what they retain, so nothing escapes the record's lifetime.
	pl := &st.pl
	if err := st.parser.ParseInto(l, pl); err != nil {
		p.unparsed.Add(1)
		p.unparsedTotal.Inc()
		if p.lat != nil {
			now := p.cfg.Clock.Now()
			if sampled {
				p.lat.Observe(latency.StageParse, now.Sub(pickedUp))
			}
			e2e := now.Sub(l.Arrival)
			p.lineSeconds.Observe(e2e.Seconds())
			p.lat.CheckSLO(e2e)
			// An unparsed line still advances freshness: the partition
			// made progress even though no event time was extracted.
			n := l.Arrival.UnixNano()
			p.lat.Partition(ctx.Partition()).Note(n, n)
			st.lat.Note(n, n)
		} else {
			p.lineSeconds.Observe(p.cfg.Clock.Since(l.Arrival).Seconds())
		}
		if p.cfg.Tracer != nil {
			p.cfg.Tracer.Stamp(l.Source, l.Seq, metrics.StageParser, "unparsed")
		}
		return []any{anomaly.Record{
			Type:      anomaly.UnparsedLog,
			Severity:  anomaly.Warning,
			Reason:    "log matches no pattern",
			Timestamp: l.Arrival,
			Source:    l.Source,
			Logs:      []logtypes.Log{l},
		}}
	}
	p.parsedTotal.Inc()
	var parsedAt time.Time
	if sampled {
		parsedAt = p.cfg.Clock.Now()
		p.lat.Observe(latency.StageParse, parsedAt.Sub(pickedUp))
	}
	if p.cfg.Tracer != nil {
		p.cfg.Tracer.Stamp(l.Source, l.Seq, metrics.StageParser, "pattern="+strconv.Itoa(pl.PatternID))
	}
	if p.hb != nil && pl.HasTimestamp {
		p.hb.Observe(l.Source, pl.Timestamp)
	}
	recs := st.detector.Process(pl)
	if st.volume != nil {
		recs = append(recs, st.volume.Process(pl)...)
	}
	if p.lat != nil {
		now := p.cfg.Clock.Now()
		if sampled {
			p.lat.Observe(latency.StageDetect, now.Sub(parsedAt))
		}
		e2e := now.Sub(l.Arrival)
		p.lineSeconds.Observe(e2e.Seconds())
		p.lat.CheckSLO(e2e)
		// Freshness watermarks: event time from the parsed timestamp
		// when present (falling back to arrival), processing time from
		// arrival.
		p.lat.Partition(ctx.Partition()).Note(pl.EventTime().UnixNano(), l.Arrival.UnixNano())
		st.lat.Note(pl.EventTime().UnixNano(), l.Arrival.UnixNano())
	} else {
		p.lineSeconds.Observe(p.cfg.Clock.Since(l.Arrival).Seconds())
	}
	return wrapRecords(recs)
}

// effectiveModel resolves the model serving a source via the worker's
// broadcast cache: the source-dedicated variable when present, else the
// default.
func (p *Pipeline) effectiveModel(ctx *stream.Context, source string) *modelmgr.Model {
	return p.modelByID(ctx, modelIDFor(source))
}

// modelByID is effectiveModel with the dedicated-broadcast ID already
// composed — the operators cache it per source state so the hot path
// skips the modelIDFor concatenation.
func (p *Pipeline) modelByID(ctx *stream.Context, dedicatedID string) *modelmgr.Model {
	if dedicatedID != ModelBroadcastID {
		if v, ok := ctx.Broadcast(dedicatedID); ok {
			if m, _ := v.(*modelmgr.Model); m != nil {
				return m
			}
		}
	}
	v, ok := ctx.Broadcast(ModelBroadcastID)
	if !ok {
		return nil
	}
	m, _ := v.(*modelmgr.Model)
	return m
}

func wrapRecords(recs []anomaly.Record) []any {
	if len(recs) == 0 {
		return nil
	}
	out := make([]any, len(recs))
	for i, r := range recs {
		out[i] = r
	}
	return out
}

// sink receives anomalies from the engine barrier, stores them, and runs
// callbacks.
func (p *Pipeline) sink(o any) {
	rec, ok := o.(anomaly.Record)
	if !ok {
		return
	}
	p.anomalies.Add(1)
	if p.lat != nil && len(rec.Logs) > 0 {
		// The sink stage is verdict staleness: how old the anomaly's
		// triggering line was when the verdict landed here — the
		// paper's real-time claim in one number. Anomalies are rare, so
		// this path is off the per-line budget.
		p.lat.Observe(latency.StageSink, p.cfg.Clock.Since(rec.Logs[0].Arrival))
	}
	// Anomalies are rare relative to lines, so the labeled counter is
	// resolved per record rather than cached per type.
	p.reg.Counter("core_anomalies_total", "type", rec.Type.String()).Inc()
	p.events.Record(obs.EventAnomaly, rec.Source, rec.Type.String()+": "+rec.Reason, 1)
	if p.cfg.Tracer != nil && len(rec.Logs) > 0 {
		l := rec.Logs[0]
		p.cfg.Tracer.Stamp(l.Source, l.Seq, metrics.StageEmit, "type="+rec.Type.String())
	}
	if !p.cfg.DisableAnomalyStorage {
		p.store.Index(AnomaliesIndex).PutAuto(store.Document{
			"type":      rec.Type.String(),
			"severity":  rec.Severity.String(),
			"reason":    rec.Reason,
			"ts":        rec.Timestamp,
			"source":    rec.Source,
			"eventId":   rec.EventID,
			"automaton": rec.AutomatonID,
			"logCount":  len(rec.Logs),
		})
	}
	p.mu.Lock()
	cbs := p.callbacks
	p.mu.Unlock()
	for _, fn := range cbs {
		fn(rec)
	}
}
