package core

import (
	"sync"
	"testing"
	"time"

	"loglens/internal/anomaly"
	"loglens/internal/datagen"
	"loglens/internal/experiments"
)

// TestPipelineSS7CaseStudy runs the §VII-B case study through the
// deployed service rather than the batch harness: 994 spoofing anomalies
// in 4 bursts must come out of the live pipeline's anomaly storage.
func TestPipelineSS7CaseStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c := datagen.SS7(0.01, 7)

	p, err := New(Config{DisableHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Train("ss7", experiments.ToLogs("ss7", c.Train)); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var records []anomaly.Record
	p.OnAnomaly(func(r anomaly.Record) {
		mu.Lock()
		records = append(records, r)
		mu.Unlock()
	})
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	ag, err := p.Agent("ss7", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range c.Test {
		if err := ag.Send(line); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Drain(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	injectHeartbeatAndWait(t, p, "ss7", c.Truth.LastLogTime.Add(time.Hour))
	if err := p.Drain(time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(records) != c.Truth.Anomalies {
		t.Fatalf("pipeline found %d anomalies, want %d", len(records), c.Truth.Anomalies)
	}
	for _, r := range records {
		if r.Type != anomaly.MissingEnd {
			t.Fatalf("non-spoofing anomaly leaked: %+v", r)
		}
	}
	clusters := anomaly.Clusterize(records, 5*time.Minute)
	if len(clusters) != c.Truth.Clusters {
		t.Fatalf("clusters = %d, want %d", len(clusters), c.Truth.Clusters)
	}
}
