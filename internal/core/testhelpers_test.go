package core

import (
	"testing"
	"time"

	"loglens/internal/testutil"
)

// injectHeartbeatAndWait injects a heartbeat and waits until the pump has
// pulled it off the bus and handed it to an engine. Drain's bus-lag phase
// alone cannot see this: offsets advance when the pump polls, before the
// heartbeat hook runs, so a Drain racing the hook could observe lag 0
// with the heartbeat still unforwarded.
func injectHeartbeatAndWait(t *testing.T, p *Pipeline, source string, at time.Time) {
	t.Helper()
	before := p.forwarded.Load() + p.parsedForwarded.Load()
	p.InjectHeartbeat(source, at)
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		return p.forwarded.Load()+p.parsedForwarded.Load() > before
	}, "injected heartbeat never forwarded to the engine")
}
