package core

import (
	"fmt"
	"math"
	"testing"
	"time"

	"loglens/internal/clock"
	"loglens/internal/experiments"
	"loglens/internal/latency"
	"loglens/internal/logtypes"
	"loglens/internal/metrics"
	"loglens/internal/testutil"
)

// latencyTrainingLines builds a timestamp-less training corpus so the
// mined patterns carry no DateTime token: detection lines fabricated by
// the test (also timestamp-less) then parse cleanly and their EventTime
// falls back to Arrival, which the test controls exactly.
func latencyTrainingLines() []string {
	var lines []string
	for i := 0; i < 150; i++ {
		id := fmt.Sprintf("tr-%04d", i)
		lines = append(lines,
			fmt.Sprintf("task %s start prio %d", id, i%5),
			fmt.Sprintf("task %s done code %d", id, i%3),
		)
	}
	return lines
}

// quantileWithin asserts an exact interpolated quantile to within float
// round-off.
func quantileWithin(t *testing.T, what string, hv metrics.HistogramValue, q, want float64) {
	t.Helper()
	got := hv.Quantile(q)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("%s p%g = %v, want %v", what, q*100, got, want)
	}
}

// TestPipelineLatencyExact scripts the whole latency plane on a fake
// clock and asserts the resulting percentiles, SLO burn, and watermarks
// EXACTLY. Two waves of lines with fabricated Arrival stamps flow
// through the started engine while the clock is parked, so every stage
// delta is a known constant:
//
//   - wave 1: 90 "alpha" lines, Arrival=T0, processed with the clock at
//     T0+100ms → deliver=e2e=100ms, every line breaching the 50ms SLO;
//   - wave 2: 10 "beta" lines, Arrival=T0+100ms, processed at T0+125ms
//     → deliver=e2e=25ms, inside the SLO.
//
// E2e, SLO burn, and watermarks are per-line; the stage histograms
// observe on the deterministic 1-in-16 per-source sample.
//
// Parse and detect run with the clock parked, so their deltas are an
// exact 0s. MaxBatch=10 with an hour-long batch window makes every full
// batch dispatch immediately and keeps any empty barrier from firing in
// between, so the barrier-cadence freshness gauges hold the values
// computed at the wave-2 barrier.
func TestPipelineLatencyExact(t *testing.T) {
	fc := clock.NewFake()
	t0 := fc.Now()
	p, err := New(Config{
		Clock:            fc,
		DisableHeartbeat: true,
		Partitions:       1,
		MaxBatch:         10,
		BatchInterval:    time.Hour,
		SLOE2E:           50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Train("latency", experiments.ToLogs("alpha", latencyTrainingLines())); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	parsed := func() uint64 { return p.Metrics().Snapshot().Counter("core_parsed_total") }

	// Wave 1: 90 alpha lines that aged 100ms between arrival and pickup.
	fc.Advance(100 * time.Millisecond)
	for i := 0; i < 90; i++ {
		p.forward(logtypes.Log{
			Source:  "alpha",
			Seq:     uint64(i + 1),
			Arrival: t0,
			Raw:     fmt.Sprintf("task a%04d start prio %d", i, i%5),
		})
	}
	testutil.WaitUntil(t, 10*time.Second, func() bool { return parsed() == 90 },
		"wave 1 not fully parsed")

	// Wave 2: 10 beta lines, 25ms old at pickup.
	fc.SetTime(t0.Add(125 * time.Millisecond))
	for i := 0; i < 10; i++ {
		p.forward(logtypes.Log{
			Source:  "beta",
			Seq:     uint64(i + 1),
			Arrival: t0.Add(100 * time.Millisecond),
			Raw:     fmt.Sprintf("task b%04d start prio %d", i, i%5),
		})
	}
	testutil.WaitUntil(t, 10*time.Second, func() bool { return parsed() == 100 },
		"wave 2 not fully parsed")
	// The freshness gauges republish at the micro-batch barrier, which
	// completes after the last parse increments the counter above: sync
	// on beta's gauge reaching its exact barrier value before snapshotting.
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		return p.Metrics().Snapshot().Gauge("freshness_proc_lag_ms", "tenant", "beta") == 25
	}, "wave 2 barrier never refreshed the freshness gauges")

	snap := p.Metrics().Snapshot()
	if got := snap.Counter("core_unparsed_total"); got != 0 {
		t.Fatalf("unparsed = %d, want 0 (histogram expectations assume clean parses)", got)
	}

	// The stage histograms observe on the deterministic 1-in-16
	// per-source sample: alpha's 90 lines sample ticks 0,16,32,48,64,80
	// (6 observations) and beta's 10 lines sample tick 0 (1). Deliver
	// closes at the engine's batch pickup stamp, so the 6 alpha samples
	// are an exact 100ms — bucket (0.05,0.1] — and beta's one sample an
	// exact 25ms, which Observe places in (0.01,0.025] (values on a
	// bound land in that bound's bucket). Interpolating inside
	// (0.05,0.1] with rank 7q: p50 → 0.05 + 0.05·(3.5-1)/6, p95 →
	// +0.05·(6.65-1)/6, p99 → +0.05·(6.93-1)/6.
	deliver, ok := snap.Histogram("latency_stage_seconds", "stage", "deliver")
	if !ok || deliver.Count != 7 {
		t.Fatalf("deliver histogram = %+v, ok=%v (want 7 sampled stamps)", deliver, ok)
	}
	quantileWithin(t, "deliver", deliver, 0.50, 0.05+(0.1-0.05)*(0.50*7-1)/6)
	quantileWithin(t, "deliver", deliver, 0.95, 0.05+(0.1-0.05)*(0.95*7-1)/6)
	quantileWithin(t, "deliver", deliver, 0.99, 0.05+(0.1-0.05)*(0.99*7-1)/6)

	// Parse and detect stamps ride the deterministic 1-in-16 per-source
	// sample: alpha's 90 lines stamp ticks 0,16,32,48,64,80 (6 samples)
	// and beta's 10 lines stamp tick 0 (1 sample). The clock was parked
	// during every stamp, so all 7 samples are an exact 0, landing in
	// the first bucket [0, 5µs); with every sample in one bucket the
	// interpolated quantile is bound·q regardless of count.
	for _, stage := range []string{"parse", "detect"} {
		hv, ok := snap.Histogram("latency_stage_seconds", "stage", stage)
		if !ok || hv.Count != 7 {
			t.Fatalf("%s histogram = %+v, ok=%v (want 7 sampled stamps)", stage, hv, ok)
		}
		if hv.Buckets[0] != 7 {
			t.Errorf("%s first bucket = %d, want all 7 samples", stage, hv.Buckets[0])
		}
		quantileWithin(t, stage, hv, 0.50, latency.StageBuckets[0]*50/100)
		quantileWithin(t, stage, hv, 0.99, latency.StageBuckets[0]*99/100)
	}

	// No network intake ran and no anomaly fired, so those stages are
	// empty.
	for _, stage := range []string{"intake", "sink"} {
		if hv, _ := snap.Histogram("latency_stage_seconds", "stage", stage); hv.Count != 0 {
			t.Errorf("%s histogram count = %d, want 0", stage, hv.Count)
		}
	}

	// End-to-end equals deliver here (parse and detect cost 0 fake
	// time); over metrics.DefBuckets the 100ms wave lands in (0.05,0.1]
	// and the 25ms wave in (0.025,0.05]... the 25ms samples sit exactly
	// on the 0.025 bound, which Observe places in (0.01,0.025]. The
	// interpolation is therefore identical to deliver's.
	e2e, ok := snap.Histogram("core_line_seconds")
	if !ok || e2e.Count != 100 {
		t.Fatalf("core_line_seconds = %+v, ok=%v", e2e, ok)
	}
	quantileWithin(t, "e2e", e2e, 0.50, 0.05+(0.1-0.05)*(50-10)/90)
	quantileWithin(t, "e2e", e2e, 0.99, 0.05+(0.1-0.05)*(99-10)/90)

	// Exactly the 90 wave-1 lines breached the 50ms SLO.
	if got := snap.Counter("latency_slo_breach_total"); got != 90 {
		t.Errorf("latency_slo_breach_total = %d, want 90", got)
	}

	// Freshness gauges hold the wave-2 barrier's computation (clock at
	// T0+125ms): the partition and beta watermarks are wave 2's arrival
	// (T0+100ms, 25ms old), alpha's is wave 1's (T0, 125ms old).
	if got := snap.Gauge("freshness_event_lag_ms", "partition", "0"); got != 25 {
		t.Errorf("partition event lag = %d, want 25", got)
	}
	if got := snap.Gauge("freshness_proc_lag_ms", "partition", "0"); got != 25 {
		t.Errorf("partition proc lag = %d, want 25", got)
	}
	if got := snap.Gauge("freshness_proc_lag_ms", "tenant", "alpha"); got != 125 {
		t.Errorf("alpha proc lag = %d, want 125", got)
	}
	if got := snap.Gauge("freshness_proc_lag_ms", "tenant", "beta"); got != 25 {
		t.Errorf("beta proc lag = %d, want 25", got)
	}

	// The live watermark table recomputes lag against the current clock:
	// advance 100ms with no traffic and every lag ages by exactly 100ms.
	fc.SetTime(t0.Add(225 * time.Millisecond))
	parts, tenants := p.Latency().Watermarks()
	if len(parts) != 1 || parts[0].EventLagMs != 125 || parts[0].ProcLagMs != 125 {
		t.Errorf("partition watermarks = %+v, want 125ms lags", parts)
	}
	if !parts[0].ProcTime.Equal(t0.Add(100 * time.Millisecond)) {
		t.Errorf("partition proc watermark = %v", parts[0].ProcTime)
	}
	if len(tenants) != 2 || tenants[0].Tenant != "alpha" || tenants[1].Tenant != "beta" {
		t.Fatalf("tenant watermarks = %+v", tenants)
	}
	if tenants[0].ProcLagMs != 225 || tenants[1].ProcLagMs != 125 {
		t.Errorf("tenant lags = %d/%d, want 225/125", tenants[0].ProcLagMs, tenants[1].ProcLagMs)
	}

	// The ingest watermark is fed by the log-manager admission path, not
	// by direct engine sends: it is still empty, and flips to the bus
	// publish stamp once a line travels the agent → bus → log manager
	// route with the clock parked at a known instant.
	if wm := p.Latency().IngestWatermark(); !wm.IsZero() {
		t.Fatalf("ingest watermark = %v before any admitted line", wm)
	}
	ag, err := p.Agent("alpha", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ag.Send("task a9999 start prio 1"); err != nil {
		t.Fatal(err)
	}
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		return p.Latency().IngestWatermark().Equal(t0.Add(225 * time.Millisecond))
	}, "ingest watermark never advanced to the admitted line's publish stamp")
}

// TestPipelineLatencyDisabled: DisableLatency keeps the whole plane off —
// no tracker, no stage histograms, no breach counter — while the legacy
// e2e histogram still observes.
func TestPipelineLatencyDisabled(t *testing.T) {
	fc := clock.NewFake()
	p, err := New(Config{
		Clock:            fc,
		DisableHeartbeat: true,
		DisableLatency:   true,
		Partitions:       1,
		MaxBatch:         10,
		BatchInterval:    time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Latency() != nil {
		t.Fatal("Latency() non-nil with DisableLatency")
	}
	if _, _, err := p.Train("latency", experiments.ToLogs("alpha", latencyTrainingLines())); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	for i := 0; i < 10; i++ {
		p.forward(logtypes.Log{Source: "alpha", Seq: uint64(i + 1), Arrival: fc.Now(),
			Raw: fmt.Sprintf("task d%04d start prio %d", i, i%5)})
	}
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		return p.Metrics().Snapshot().Counter("core_parsed_total") == 10
	}, "lines not parsed")
	snap := p.Metrics().Snapshot()
	if hv, ok := snap.Histogram("latency_stage_seconds", "stage", "deliver"); ok && hv.Count != 0 {
		t.Errorf("deliver histogram observed %d samples with the plane disabled", hv.Count)
	}
	if hv, ok := snap.Histogram("core_line_seconds"); !ok || hv.Count != 10 {
		t.Errorf("core_line_seconds = %+v, ok=%v, want 10 observations", hv, ok)
	}
}
