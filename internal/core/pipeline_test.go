package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"loglens/internal/anomaly"
	"loglens/internal/datagen"
	"loglens/internal/experiments"
	"loglens/internal/modelmgr"
	"loglens/internal/store"
	"loglens/internal/testutil"
)

// TestPipelineEndToEndD1 streams the full D1 corpus through the real
// service path — agent, bus, log manager, streaming engine, parser,
// sequence detector, anomaly storage — and must find exactly the 21
// ground-truth anomalies (Figure 4, over the deployed system rather than
// the batch harness).
func TestPipelineEndToEndD1(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c := datagen.D1(23)

	p, err := New(Config{DisableHeartbeat: true}) // heartbeats injected deterministically below
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Train("d1", experiments.ToLogs("d1", c.Train)); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var records []anomaly.Record
	p.OnAnomaly(func(r anomaly.Record) {
		mu.Lock()
		records = append(records, r)
		mu.Unlock()
	})

	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	ag, err := p.Agent("d1", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range c.Test {
		if err := ag.Send(line); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	// The final heartbeat reports the still-open (missing-end) events.
	injectHeartbeatAndWait(t, p, "d1", c.Truth.LastLogTime.Add(24*time.Hour))
	if err := p.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(records) != c.Truth.TotalAnomalies {
		for _, r := range records {
			t.Logf("%s event=%s: %s", r.Type, r.EventID, r.Reason)
		}
		t.Fatalf("pipeline found %d anomalies, ground truth %d", len(records), c.Truth.TotalAnomalies)
	}
	if got := p.AnomalyCount(); got != uint64(c.Truth.TotalAnomalies) {
		t.Errorf("AnomalyCount = %d", got)
	}
	if p.UnparsedCount() != 0 {
		t.Errorf("unparsed = %d", p.UnparsedCount())
	}
	// Anomalies are queryable from the anomaly storage.
	hits := p.Anomalies(store.Query{Term: map[string]any{"source": "d1"}})
	if len(hits) != c.Truth.TotalAnomalies {
		t.Errorf("anomaly storage has %d records", len(hits))
	}
}

// TestPipelineZeroDowntimeModelUpdate exercises the §V-A path over the
// service: a model update mid-stream must not lose records and must change
// detection behaviour (the Table V deletion) without a restart.
func TestPipelineZeroDowntimeModelUpdate(t *testing.T) {
	p, err := New(Config{DisableHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}

	// Train a trivial two-pattern model via the builder on synthetic
	// event traces.
	var train []string
	base := time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 300; i++ {
		id := fmt.Sprintf("ev-%04d", i)
		t0 := base.Add(time.Duration(i*10) * time.Second)
		train = append(train,
			fmt.Sprintf("%s task %s start prio %d", t0.Format("2006/01/02 15:04:05.000"), id, i%5),
			fmt.Sprintf("%s task %s done code %d", t0.Add(2*time.Second).Format("2006/01/02 15:04:05.000"), id, i%3),
		)
	}
	model, _, err := p.Train("m1", experiments.ToLogs("tasks", train))
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Sequence.Automata) != 1 {
		t.Fatalf("automata = %d, want 1", len(model.Sequence.Automata))
	}

	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	ag, err := p.Agent("tasks", 0)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: a missing-begin trace under the full model -> anomaly.
	send := func(line string) {
		if err := ag.Send(line); err != nil {
			t.Fatal(err)
		}
	}
	tt := base.Add(time.Hour)
	send(fmt.Sprintf("%s task bad-1 done code 1", tt.Format("2006/01/02 15:04:05.000")))
	if err := p.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := p.AnomalyCount(); got != 1 {
		t.Fatalf("phase 1 anomalies = %d, want 1", got)
	}

	// Phase 2: delete the automaton through the model manager +
	// controller (the real update path), then the same trace is
	// silent.
	m2 := model.Clone()
	m2.ID = "m2"
	m2.Sequence.Delete(m2.Sequence.Automata[0].ID)
	if err := p.Manager().Save(m2); err != nil {
		t.Fatal(err)
	}
	if err := p.Controller().Announce(modelmgr.Instruction{Op: modelmgr.OpUpdate, ModelID: "m2"}); err != nil {
		t.Fatal(err)
	}
	// The instruction flows through the control topic asynchronously.
	testutil.WaitUntil(t, 5*time.Second, func() bool {
		m := p.Model()
		return m != nil && m.ID == "m2"
	}, "model update never applied")

	tt = tt.Add(time.Minute)
	send(fmt.Sprintf("%s task bad-2 done code 1", tt.Format("2006/01/02 15:04:05.000")))
	if err := p.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := p.AnomalyCount(); got != 1 {
		t.Fatalf("after deletion anomalies = %d, want still 1 (no restart, rules gone)", got)
	}
	if p.Engine().Metrics().UpdatesApplied == 0 {
		t.Error("model update did not go through the rebroadcast path")
	}
}

// TestPipelineUnparsedAnomaly checks the stateless path end to end.
func TestPipelineUnparsedAnomaly(t *testing.T) {
	p, err := New(Config{DisableHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	var train []string
	for i := 0; i < 50; i++ {
		train = append(train, fmt.Sprintf("service heartbeat seq %d", i))
	}
	if _, _, err := p.Train("m", experiments.ToLogs("s", train)); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	ag, _ := p.Agent("s", 0)
	ag.Send("service heartbeat seq 51")
	ag.Send("kernel panic totally unexpected")
	if err := p.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if p.UnparsedCount() != 1 {
		t.Errorf("unparsed = %d, want 1", p.UnparsedCount())
	}
	hits := p.Anomalies(store.Query{Term: map[string]any{"type": anomaly.UnparsedLog.String()}})
	if len(hits) != 1 {
		t.Errorf("stored unparsed anomalies = %d", len(hits))
	}
}
