// Persistent-storage wiring: StorageConfig turns the pipeline's store
// into the segment-file engine (internal/store's persistent mode), which
// in turn makes checkpoints incremental — internal/recovery records the
// store's manifest generation instead of copying every index.
package core

import (
	"fmt"
	"time"

	"loglens/internal/fsx"
	"loglens/internal/modelmgr"
	"loglens/internal/obs"
	"loglens/internal/store"
)

// StorageConfig enables the persistent segment-file store. Persistence is
// on when Dir is non-empty; the zero value keeps the store in memory.
type StorageConfig struct {
	// Dir is the data directory; non-empty enables the segment engine.
	Dir string
	// Retention, when positive, ages whole segments of log/anomaly
	// storage out once they fall behind this horizon. Model storage is
	// always exempt. Zero keeps everything.
	Retention time.Duration
	// FS is the filesystem the engine writes through (default the OS;
	// the chaos harness injects storage faults here).
	FS fsx.FS
	// FlushInterval, CompactInterval, and RetentionInterval enable the
	// engine's background maintenance loops on the pipeline clock when
	// positive. Zero leaves maintenance to checkpoints and explicit
	// calls — the default for tests driving a fake clock.
	FlushInterval     time.Duration
	CompactInterval   time.Duration
	RetentionInterval time.Duration
}

func (c StorageConfig) enabled() bool { return c.Dir != "" }

// openStore builds the pipeline's store: the persistent segment engine
// when storage is configured, the in-memory engine otherwise.
func openStore(cfg Config) (*store.Store, error) {
	if !cfg.Storage.enabled() {
		return store.New(), nil
	}
	st, err := store.Open(store.Options{
		Dir:               cfg.Storage.Dir,
		FS:                cfg.Storage.FS,
		Clock:             cfg.Clock,
		Retention:         cfg.Storage.Retention,
		RetentionExempt:   []string{modelmgr.ModelsIndex},
		FlushInterval:     cfg.Storage.FlushInterval,
		CompactInterval:   cfg.Storage.CompactInterval,
		RetentionInterval: cfg.Storage.RetentionInterval,
	})
	if err != nil {
		return nil, fmt.Errorf("core: open storage: %w", err)
	}
	return st, nil
}

// storageProbe reports segment-engine health: degraded while the engine
// carries an unresolved disk error, healthy otherwise.
func (p *Pipeline) storageProbe() obs.ProbeResult {
	st := p.store.Stats()
	if st.LastError != "" {
		return obs.ProbeResult{Status: obs.Degraded,
			Detail: "storage error: " + st.LastError}
	}
	docs := 0
	for _, ix := range st.Indices {
		docs += ix.Docs
	}
	return obs.ProbeResult{Status: obs.Healthy, Detail: fmt.Sprintf(
		"generation %d, %d indices, %d docs, %d flushes", st.Generation, len(st.Indices), docs, st.Flushes)}
}
