package core

import (
	"strconv"
	"testing"
	"time"

	"loglens/internal/clock"
	"loglens/internal/testutil"
)

// Sharded-pipeline coverage for the persistent per-partition worker
// engine: the conservation balance and the crash/restore cycle must hold
// when records spread across 8 independent worker queues, not just the
// 1- and 4-partition shapes the older suites pin.

// shardedFeed spreads lines round-robin across nSources agents (each
// source keys to one partition). start is the line's absolute corpus
// index, so feeding a corpus in slices assigns every line the same
// source as feeding it whole — crash replays must reproduce the same
// per-source bus sequences.
func shardedFeed(t *testing.T, p *Pipeline, nSources, start int, lines []string) {
	t.Helper()
	agents := make([]interface{ Send(string) error }, nSources)
	for i := range agents {
		ag, err := p.Agent("web"+strconv.Itoa(i), 0)
		if err != nil {
			t.Fatal(err)
		}
		agents[i] = ag
	}
	for i, l := range lines {
		if err := agents[(start+i)%nSources].Send(l); err != nil {
			t.Fatal(err)
		}
	}
}

// TestConservationEightPartitions: the clean-run conservation balance
// (lines == parsed + unparsed, nothing dropped at any layer) must close
// exactly with 8 partition workers each draining its own queue. The fake
// clock keeps every batch window from firing, so the balance rests
// entirely on the workers' close-drain path.
func TestConservationEightPartitions(t *testing.T) {
	const nParsed, nUnparsed = 48, 8
	const sources = 8
	training, prod := conservationCorpus(nParsed, nUnparsed)

	fc := clock.NewFake()
	p, err := New(Config{Clock: fc, DisableHeartbeat: true, Partitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Train("conservation-8p", training); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	shardedFeed(t, p, sources, 0, prod)
	n := uint64(len(prod))

	testutil.WaitUntil(t, 10*time.Second, func() bool {
		return p.forwarded.Load() == n
	}, "log manager did not forward every line")
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}

	snap := p.Metrics().Snapshot()
	if got := snap.Counter("core_lines_total"); got != n {
		t.Errorf("core_lines_total = %d, want %d", got, n)
	}
	if got := snap.Counter("stream_records_total", "engine", "main"); got != n {
		t.Errorf("stream_records_total = %d, want %d", got, n)
	}
	if got := snap.Counter("stream_records_dropped_total", "engine", "main", "reason", "abandoned"); got != 0 {
		t.Errorf("stream_records_dropped_total = %d, want 0", got)
	}
	parsed := snap.Counter("core_parsed_total")
	unparsed := snap.Counter("core_unparsed_total")
	if parsed+unparsed != n {
		t.Errorf("conservation broken: parsed %d + unparsed %d != lines %d", parsed, unparsed, n)
	}
	if unparsed != nUnparsed {
		t.Errorf("core_unparsed_total = %d, want %d", unparsed, nUnparsed)
	}
	// Traffic really spread: every partition worker saw records.
	for part := 0; part < 8; part++ {
		if got := snap.Gauge("stream_state_entries", "engine", "main", "partition", strconv.Itoa(part)); got < 0 {
			t.Errorf("partition %d gauge missing", part)
		}
	}
}

// TestCrashRecoveryEightPartitions: one kill-and-restore cycle with 8
// partition workers and traffic spread over 8 sources must reproduce the
// golden (uninterrupted) end state exactly — the merged commit frontier
// may only commit offsets whose records every worker has fully resolved
// and sunk, whichever worker reached the barrier last.
func TestCrashRecoveryEightPartitions(t *testing.T) {
	const nParsed, nUnparsed = 40, 8
	const sources = 8
	training, _ := conservationCorpus(0, 0)
	_, prod := conservationCorpus(nParsed, nUnparsed)
	n := uint64(len(prod))
	mutate := func(cfg *Config) { cfg.Partitions = 8 }

	// Golden run: uninterrupted, same partitioning and feed order.
	pg := newRecoveryPipeline(t, t.TempDir(), false, mutate)
	if _, _, err := pg.Train("recovery-8p", training); err != nil {
		t.Fatal(err)
	}
	if err := pg.Start(); err != nil {
		t.Fatal(err)
	}
	shardedFeed(t, pg, sources, 0, prod)
	if err := pg.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	golden := collectResult(pg)
	if err := pg.Stop(); err != nil {
		t.Fatal(err)
	}
	assertConservation(t, golden, n)
	if golden.unparsed != nUnparsed {
		t.Fatalf("golden unparsed = %d, want %d", golden.unparsed, nUnparsed)
	}

	// Crash run: checkpoint mid-stream, keep feeding, kill without
	// drain, restore into a fresh pipeline, replay the full corpus.
	const ckptAt, killAt = 20, 36
	dir := t.TempDir()
	p1 := newRecoveryPipeline(t, dir, false, mutate)
	if _, _, err := p1.Train("recovery-8p", training); err != nil {
		t.Fatal(err)
	}
	if err := p1.Start(); err != nil {
		t.Fatal(err)
	}
	shardedFeed(t, p1, sources, 0, prod[:ckptAt])
	if err := p1.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if gen, err := p1.Checkpoint(); err != nil || gen == 0 {
		t.Fatalf("checkpoint: gen %d, err %v", gen, err)
	}
	shardedFeed(t, p1, sources, ckptAt, prod[ckptAt:killAt])
	p1.Kill()

	p2 := newRecoveryPipeline(t, dir, false, mutate)
	restored, err := p2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if !restored {
		t.Fatal("Restore found no checkpoint")
	}
	if err := p2.Start(); err != nil {
		t.Fatal(err)
	}
	shardedFeed(t, p2, sources, 0, prod)
	if err := p2.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	res := collectResult(p2)
	if err := p2.Stop(); err != nil {
		t.Fatal(err)
	}
	assertConservation(t, res, n)
	assertSameResult(t, res, golden)
}
