package core

import (
	"sync"
	"testing"
	"time"

	"loglens/internal/anomaly"
	"loglens/internal/datagen"
	"loglens/internal/experiments"
	"loglens/internal/store"
)

// TestStagedTopologyD1 runs the full D1 reproduction through the staged
// topology — parser stage and detector stage as separate engines connected
// by the parsed-logs bus topic (the Figure 1 deployment shape). The
// counts must match the fused topology exactly: 21/21.
func TestStagedTopologyD1(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c := datagen.D1(29)

	p, err := New(Config{Staged: true, DisableHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Train("d1", experiments.ToLogs("d1", c.Train)); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var records []anomaly.Record
	p.OnAnomaly(func(r anomaly.Record) {
		mu.Lock()
		records = append(records, r)
		mu.Unlock()
	})
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	ag, err := p.Agent("d1", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range c.Test {
		if err := ag.Send(line); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Drain(time.Minute); err != nil {
		t.Fatal(err)
	}
	injectHeartbeatAndWait(t, p, "d1", c.Truth.LastLogTime.Add(24*time.Hour))
	if err := p.Drain(time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := p.OpenStates(); got != 0 {
		t.Errorf("open states after final heartbeat = %d", got)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(records) != c.Truth.TotalAnomalies {
		for _, r := range records {
			t.Logf("%s event=%s: %s", r.Type, r.EventID, r.Reason)
		}
		t.Fatalf("staged pipeline found %d anomalies, ground truth %d", len(records), c.Truth.TotalAnomalies)
	}
	if p.UnparsedCount() != 0 {
		t.Errorf("unparsed = %d", p.UnparsedCount())
	}
	// Both stages processed traffic.
	if p.Engine().Metrics().Records == 0 || p.detectEngine.Metrics().Records == 0 {
		t.Error("a stage processed nothing")
	}
	// Anomalies landed in storage through the staged path too.
	hits := p.Anomalies(store.Query{})
	if len(hits) != c.Truth.TotalAnomalies {
		t.Errorf("anomaly storage has %d records", len(hits))
	}
}

// TestStagedModelUpdate: the zero-downtime model update must reach both
// stages (parser patterns and detector automata).
func TestStagedModelUpdate(t *testing.T) {
	p, err := New(Config{Staged: true, DisableHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	var train []string
	for i := 0; i < 100; i++ {
		t0 := msBase.Add(time.Duration(i*10) * time.Second)
		train = append(train,
			msStamp(t0)+" ping p-"+fmtInt(i)+" sent ttl 32",
			msStamp(t0.Add(time.Second))+" ping p-"+fmtInt(i)+" pong rtt 5 ms",
		)
	}
	model, _, err := p.Train("v1", experiments.ToLogs("s", train))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	ag, _ := p.Agent("s", 0)

	tt := msBase.Add(time.Hour)
	ag.Send(msStamp(tt) + " ping bad-1 pong rtt 5 ms") // missing begin
	if err := p.Drain(time.Minute); err != nil {
		t.Fatal(err)
	}
	if p.AnomalyCount() != 1 {
		t.Fatalf("anomalies = %d", p.AnomalyCount())
	}

	// Delete the automaton; rebroadcast reaches the detector stage.
	v2 := model.Clone()
	v2.ID = "v2"
	v2.Sequence.Delete(v2.Sequence.Automata[0].ID)
	p.InstallModel(v2)

	tt = tt.Add(time.Minute)
	ag.Send(msStamp(tt) + " ping bad-2 pong rtt 5 ms")
	if err := p.Drain(time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if p.AnomalyCount() != 1 {
		t.Fatalf("anomalies after update = %d, want still 1", p.AnomalyCount())
	}
	if p.detectEngine.Metrics().UpdatesApplied == 0 {
		t.Error("update never reached the detector stage")
	}
}

func fmtInt(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
