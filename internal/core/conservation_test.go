package core

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"loglens/internal/agent"
	"loglens/internal/chaos"
	"loglens/internal/clock"
	"loglens/internal/logtypes"
	"loglens/internal/testutil"
)

// conservationCorpus builds a small training corpus plus a production
// stream with a known composition: nParsed lines the model parses and
// nUnparsed lines no pattern matches.
func conservationCorpus(nParsed, nUnparsed int) (training []logtypes.Log, prod []string) {
	base := time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("req-%03d", i)
		t0 := base.Add(time.Duration(i*5) * time.Second)
		training = append(training,
			logtypes.Log{Source: "web", Seq: uint64(2*i + 1), Raw: fmt.Sprintf(
				"%s 10.0.0.%d request %s received path /api/items/%d",
				t0.Format("2006/01/02 15:04:05.000"), i%5+1, id, i%40)},
			logtypes.Log{Source: "web", Seq: uint64(2*i + 2), Raw: fmt.Sprintf(
				"%s 10.0.0.%d request %s served bytes %d",
				t0.Add(time.Second).Format("2006/01/02 15:04:05.000"), i%5+1, id, 512+i)},
		)
	}
	prodBase := base.Add(time.Hour)
	for i := 0; i < nParsed/2; i++ {
		id := fmt.Sprintf("req-9%02d", i)
		t0 := prodBase.Add(time.Duration(i*3) * time.Second)
		prod = append(prod,
			fmt.Sprintf("%s 10.0.0.1 request %s received path /api/items/1",
				t0.Format("2006/01/02 15:04:05.000"), id),
			fmt.Sprintf("%s 10.0.0.1 request %s served bytes 700",
				t0.Add(time.Second).Format("2006/01/02 15:04:05.000"), id),
		)
	}
	for i := 0; i < nUnparsed; i++ {
		prod = append(prod, fmt.Sprintf("segfault %d at 0x0 in worker thread", i))
	}
	return training, prod
}

// TestConservationClean: on an orderly run every line the agent ships must
// be accounted exactly once at every layer — bus, log manager, stream
// engine, parser — with nothing dropped. The pipeline runs on a fake
// clock, so no batch interval ever fires; Stop's close-drain path must
// still process (not lose) everything.
func TestConservationClean(t *testing.T) {
	const nParsed, nUnparsed = 40, 7
	training, prod := conservationCorpus(nParsed, nUnparsed)

	fc := clock.NewFake()
	p, err := New(Config{Clock: fc, DisableHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Train("conservation", training); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	ag, err := p.Agent("web", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range prod {
		if err := ag.Send(line); err != nil {
			t.Fatal(err)
		}
	}
	n := uint64(len(prod))

	// The log manager pump runs on real time; wait for it to hand every
	// line to the engine, then let Stop's close-drain process them.
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		return p.forwarded.Load() == n
	}, "log manager did not forward every line")
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}

	snap := p.Metrics().Snapshot()
	// Bus: every line produced to the logs topic, every line consumed.
	if got := snap.CounterSum("bus_produced_total"); got != n {
		t.Errorf("bus_produced_total = %d, want %d", got, n)
	}
	if got := snap.Counter("logmanager_received_total"); got != n {
		t.Errorf("logmanager_received_total = %d, want %d", got, n)
	}
	if got := snap.Counter("core_lines_total"); got != n {
		t.Errorf("core_lines_total = %d, want %d", got, n)
	}
	// Engine: all records processed, none dropped.
	if got := snap.Counter("stream_records_total", "engine", "main"); got != n {
		t.Errorf("stream_records_total = %d, want %d", got, n)
	}
	if got := snap.Counter("stream_records_dropped_total", "engine", "main", "reason", "abandoned"); got != 0 {
		t.Errorf("stream_records_dropped_total = %d, want 0", got)
	}
	// Parser verdicts: exact split, and the balance closes.
	parsed := snap.Counter("core_parsed_total")
	unparsed := snap.Counter("core_unparsed_total")
	if parsed != nParsed {
		t.Errorf("core_parsed_total = %d, want %d", parsed, nParsed)
	}
	if unparsed != nUnparsed {
		t.Errorf("core_unparsed_total = %d, want %d", unparsed, nUnparsed)
	}
	if parsed+unparsed != n {
		t.Errorf("conservation broken: parsed %d + unparsed %d != lines %d", parsed, unparsed, n)
	}
	// The parser-level counters agree with the core-level ones.
	if got := snap.Counter("parser_parsed_total"); got != parsed {
		t.Errorf("parser_parsed_total = %d, want %d", got, parsed)
	}
	if got := snap.Counter("parser_unparsed_total"); got != unparsed {
		t.Errorf("parser_unparsed_total = %d, want %d", got, unparsed)
	}
	// Every unparsed line surfaced as a stateless anomaly.
	if got := snap.Counter("core_anomalies_total", "type", "unparsed-log"); got != nUnparsed {
		t.Errorf("unparsed-log anomalies = %d, want %d", got, nUnparsed)
	}
}

// TestConservationUnderChaos: with a seeded chaos producer dropping,
// duplicating, and reordering messages between "agent" and bus, the
// balance must still close exactly: everything the chaos layer delivered
// to the bus is parsed or unparsed, and published == delivered + dropped
// + the duplication surplus the chaos layer itself accounts.
func TestConservationUnderChaos(t *testing.T) {
	const nParsed, nUnparsed = 60, 9
	training, prod := conservationCorpus(nParsed, nUnparsed)

	fc := clock.NewFake()
	p, err := New(Config{Clock: fc, DisableHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Train("conservation-chaos", training); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}

	// Publish through the chaos producer with agent-style headers,
	// bypassing the Agent so faults land between shipper and bus.
	cp := chaos.NewProducer(p.Bus(), agent.LogsTopic, fc, chaos.Config{
		Seed:          42,
		Drop:          0.15,
		Duplicate:     0.10,
		ReorderWindow: 4,
	})
	for i, line := range prod {
		err := cp.Publish("web", []byte(line), map[string]string{
			agent.HeaderSource: "web",
			agent.HeaderSeq:    strconv.Itoa(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := cp.Flush(); err != nil {
		t.Fatal(err)
	}
	stats := cp.Stats()
	if stats.Published != uint64(len(prod)) {
		t.Fatalf("chaos published %d, want %d", stats.Published, len(prod))
	}
	if stats.Dropped == 0 || stats.Duplicated == 0 {
		t.Fatalf("seed produced no faults (dropped %d, duplicated %d): test is vacuous",
			stats.Dropped, stats.Duplicated)
	}
	// Delivered counts every message handed to the bus, duplicates
	// included, drops excluded.
	if stats.Delivered != stats.Published-stats.Dropped+stats.Duplicated {
		t.Fatalf("chaos stats inconsistent: %+v", stats)
	}

	testutil.WaitUntil(t, 10*time.Second, func() bool {
		return p.forwarded.Load() == stats.Delivered
	}, "log manager did not forward every delivered line")
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}

	snap := p.Metrics().Snapshot()
	if got := snap.Counter("core_lines_total"); got != stats.Delivered {
		t.Errorf("core_lines_total = %d, want delivered %d", got, stats.Delivered)
	}
	if got := snap.Counter("stream_records_total", "engine", "main"); got != stats.Delivered {
		t.Errorf("stream_records_total = %d, want %d", got, stats.Delivered)
	}
	if got := snap.Counter("stream_records_dropped_total", "engine", "main", "reason", "abandoned"); got != 0 {
		t.Errorf("stream_records_dropped_total = %d, want 0", got)
	}
	parsed := snap.Counter("core_parsed_total")
	unparsed := snap.Counter("core_unparsed_total")
	if parsed+unparsed != stats.Delivered {
		t.Errorf("conservation broken: parsed %d + unparsed %d != delivered %d",
			parsed, unparsed, stats.Delivered)
	}
	// Full balance including the chaos layer: lines in == processed +
	// dropped-by-chaos - duplication surplus.
	if parsed+unparsed+stats.Dropped-stats.Duplicated != stats.Published {
		t.Errorf("chaos balance broken: parsed %d + unparsed %d + dropped %d - duplicated %d != published %d",
			parsed, unparsed, stats.Dropped, stats.Duplicated, stats.Published)
	}
}
