package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"loglens/internal/agent"
	"loglens/internal/bus"
	"loglens/internal/fsx"
	"loglens/internal/logtypes"
	"loglens/internal/obs"
	"loglens/internal/preprocess"
	"loglens/internal/recovery"
	"loglens/internal/stream"
	"loglens/internal/volume"
)

// RecoveryConfig enables the crash-recovery plane (internal/recovery):
// at-least-once bus consumption with commits gated on processing,
// periodic atomic checkpoints, supervised component restarts with a
// circuit breaker, and a poison-record quarantine. Recovery is on when
// Dir is non-empty.
//
// Delivery semantics with recovery on: every log line is processed at
// least once; a restart restores the last checkpoint and replays the bus
// from its committed offsets, so counters, operator state, and the
// anomaly store land exactly where an uninterrupted run would have —
// work done after the checkpoint is simply redone. Heartbeat controller
// state is deliberately not checkpointed (heartbeats are periodic and
// best-effort; the next beat rebuilds it).
type RecoveryConfig struct {
	// Dir is the checkpoint directory; non-empty enables recovery.
	Dir string
	// Interval is the periodic checkpoint cadence on the pipeline clock
	// (0 = checkpoints only via explicit Checkpoint calls).
	Interval time.Duration
	// FS is the filesystem checkpoints are written through (default the
	// OS; the chaos harness injects storage faults here).
	FS fsx.FS
	// Keep is how many checkpoint generations to retain (default 2).
	Keep int
	// PoisonStrikes is K: a record that panics the operator K times
	// across redeliveries is quarantined to the deadletter topic
	// (default 3).
	PoisonStrikes int
	// PoisonMarker, when non-empty, makes the operator panic on any log
	// line containing it — the chaos harness's deterministic poison
	// injection for exercising the quarantine end to end. Only honored
	// with recovery enabled (a panicking record needs the quarantine to
	// have somewhere to go).
	PoisonMarker string
	// Supervisor knobs: restart backoff range, the sliding window and
	// restart budget of the circuit breaker, and the jitter seed. Zero
	// values take the internal/recovery defaults.
	BackoffBase   time.Duration
	BackoffMax    time.Duration
	RestartWindow time.Duration
	MaxRestarts   int
	Seed          int64
}

func (c RecoveryConfig) enabled() bool { return c.Dir != "" }

// logmgrGroup is the log manager's consumer group (the logmanager
// package default, fixed here because checkpoints record it by name).
const logmgrGroup = "log-manager"

// parsedPumpGroup is the staged topology's parsed-topic consumer group.
const parsedPumpGroup = "parsed-pump"

// quiesceTimeout bounds the checkpoint barrier wait.
const quiesceTimeout = 30 * time.Second

// pendingCommit is one poll batch's offsets waiting for the engine to
// resolve the records that came out of it.
type pendingCommit struct {
	offsets   map[int]int64 // partition -> next offset to consume
	watermark uint64        // commit when the engine frontier reaches this
}

// commitTracker implements the at-least-once commit gate for one
// (group, topic): the log manager registers each consumed poll batch
// with the engine's accepted-seq watermark (Engine.Accepted after the
// batch's records were sent — the commit frontier's unit, which
// excludes seq-less heartbeats), and the
// engine's BatchHook flushes every pending batch whose watermark the
// engine's merged commit frontier has passed. The frontier is the
// longest prefix of accepted records — in acceptance order — that every
// partition worker has fully processed and sunk, so with partitions
// progressing at independent paces an offset still only commits once
// everything consumed before it has cleared the sink, whichever worker
// was last. A crash in between redelivers the uncommitted suffix.
type commitTracker struct {
	b     bus.Broker
	group string
	topic string
	on    *atomic.Bool // pipeline-level gate; Kill flips it off

	mu       sync.Mutex
	pending  []pendingCommit
	consumer bus.Reader
}

// register queues a consumed batch's offsets behind the watermark.
func (t *commitTracker) register(msgs []bus.Message, watermark uint64) {
	if t == nil || len(msgs) == 0 {
		return
	}
	offs := make(map[int]int64)
	for _, m := range msgs {
		if m.Offset+1 > offs[m.Partition] {
			offs[m.Partition] = m.Offset + 1
		}
	}
	t.mu.Lock()
	t.pending = append(t.pending, pendingCommit{offsets: offs, watermark: watermark})
	t.mu.Unlock()
}

// flush commits every pending batch whose watermark the engine's
// commit frontier has reached. Wired as the engine's BatchHook, so it
// runs at every partition worker's micro-batch barrier (serialized by
// the engine's barrier lock).
func (t *commitTracker) flush(resolved uint64) {
	if t == nil || !t.on.Load() {
		return
	}
	t.mu.Lock()
	var merged map[int]int64
	n := 0
	for ; n < len(t.pending) && t.pending[n].watermark <= resolved; n++ {
		for part, off := range t.pending[n].offsets {
			if merged == nil {
				merged = make(map[int]int64)
			}
			if off > merged[part] {
				merged[part] = off
			}
		}
	}
	t.pending = t.pending[n:]
	c := t.consumer
	if c == nil && merged != nil {
		if nc, err := t.b.Subscribe(t.group, t.topic); err == nil {
			t.consumer = nc
			c = nc
		}
	}
	t.mu.Unlock()
	if c == nil {
		return
	}
	for part, off := range merged {
		c.Commit(t.topic, part, off)
	}
}

// initRecovery builds the recovery plane. Called from New before the
// engines and the log manager so the hooks can be threaded into their
// configs.
func (p *Pipeline) initRecovery() error {
	rc := p.cfg.Recovery
	p.ckpt = recovery.NewManager(rc.FS, rc.Dir)
	if rc.Keep > 0 {
		p.ckpt.SetKeep(rc.Keep)
	}
	q, err := recovery.NewQuarantine(rc.PoisonStrikes, p.bus, p.events)
	if err != nil {
		return err
	}
	p.quarantine = q
	p.quarantinedTotal = p.reg.Counter("core_quarantined_total")
	p.commits = &commitTracker{b: p.bus, group: logmgrGroup, topic: agent.LogsTopic, on: &p.commitsOn}
	if p.cfg.Staged {
		p.parsedCommits = &commitTracker{b: p.bus, group: parsedPumpGroup, topic: ParsedTopic, on: &p.commitsOn}
	}
	return nil
}

func (p *Pipeline) supervisorConfig() recovery.SupervisorConfig {
	rc := p.cfg.Recovery
	return recovery.SupervisorConfig{
		Clock:       p.cfg.Clock,
		BackoffBase: rc.BackoffBase,
		BackoffMax:  rc.BackoffMax,
		Window:      rc.RestartWindow,
		MaxRestarts: rc.MaxRestarts,
		Seed:        rc.Seed,
		Events:      p.events,
	}
}

// runSupervised runs task under a restart supervisor when recovery is
// enabled (plain invocation otherwise). Each supervisor registers a
// health probe, so a restart storm degrades /readyz and an open breaker
// reports unhealthy.
func (p *Pipeline) runSupervised(name string, ctx context.Context, task func(context.Context) error) error {
	if p.ckpt == nil {
		return task(ctx)
	}
	sup := recovery.NewSupervisor(name, p.supervisorConfig())
	if p.cfg.Ops != nil && p.cfg.Ops.Health != nil {
		p.cfg.Ops.Health.Register("supervisor:"+name, sup.Probe)
	}
	return sup.Run(ctx, task)
}

// onOperatorPanic is the engine PanicHook: strike the record and requeue
// it for redelivery until the quarantine routes it to the deadletter
// topic. Quarantined records count toward conservation (lines == parsed
// + unparsed + quarantined).
func (p *Pipeline) onOperatorPanic(_ int, rec stream.Record, v any) bool {
	source, seq, raw := recordIdentity(rec)
	key := source + "#" + strconv.FormatUint(seq, 10)
	if p.quarantine.Strike(key, source, seq, raw, fmt.Sprint(v)) {
		p.quarantined.Add(1)
		p.quarantinedTotal.Inc()
		return false
	}
	return true
}

// checkPoison panics on chaos-injected poison lines
// (RecoveryConfig.PoisonMarker); the engine's panic containment and the
// quarantine take it from there.
func (p *Pipeline) checkPoison(l logtypes.Log) {
	if m := p.cfg.Recovery.PoisonMarker; m != "" && strings.Contains(l.Raw, m) {
		panic("chaos: poison record " + l.Source + "#" + strconv.FormatUint(l.Seq, 10))
	}
}

// recordIdentity extracts (source, seq, raw line) from a stream record
// for quarantine bookkeeping.
func recordIdentity(rec stream.Record) (string, uint64, string) {
	switch l := rec.Value.(type) {
	case logtypes.Log:
		return l.Source, l.Seq, l.Raw
	case *logtypes.ParsedLog:
		return l.Source, l.Seq, l.Raw
	}
	return rec.Key, 0, ""
}

// QuarantinedCount returns how many records the quarantine routed to the
// deadletter topic.
func (p *Pipeline) QuarantinedCount() uint64 { return p.quarantined.Load() }

// DeadLetters peeks up to max quarantined records from the deadletter
// topic (offset 0 onward) without consuming them. Empty when recovery is
// disabled or nothing was quarantined.
func (p *Pipeline) DeadLetters(max int) []bus.Message {
	msgs, err := p.bus.ReadFrom(recovery.DeadLetterTopic, 0, 0, max)
	if err != nil {
		return nil
	}
	return msgs
}

// Checkpoint quiesces the pipeline at a micro-batch barrier and writes
// one atomic checkpoint generation: committed offsets, cumulative
// counters, model bindings, per-partition operator state, pending
// quarantine strikes, and a store snapshot. On a running pipeline intake
// pauses for the barrier and resumes afterward; on a stopped pipeline
// the state is already quiescent. Returns the generation written.
func (p *Pipeline) Checkpoint() (uint64, error) {
	if p.ckpt == nil {
		return 0, fmt.Errorf("core: recovery disabled (no checkpoint dir)")
	}
	p.ckptMu.Lock()
	defer p.ckptMu.Unlock()
	p.mu.Lock()
	running := p.running
	p.mu.Unlock()
	if running {
		defer p.resumeIntake()
		if err := p.quiesce(quiesceTimeout); err != nil {
			p.noteCheckpoint(0, err)
			return 0, err
		}
	}
	gen, err := p.ckpt.Save(p.buildCheckpoint(), p.store)
	p.noteCheckpoint(gen, err)
	return gen, err
}

// noteCheckpoint records the outcome for the health probe and the flight
// recorder.
func (p *Pipeline) noteCheckpoint(gen uint64, err error) {
	p.ckptStatusMu.Lock()
	p.ckptLastErr = err
	if err == nil {
		p.ckptLastGen = gen
	}
	p.ckptStatusMu.Unlock()
	if err != nil {
		p.events.Record(obs.EventStorageError, "checkpoint", err.Error(), 0)
		return
	}
	p.events.Record(obs.EventCheckpoint, "save", fmt.Sprintf("generation %d", gen), int64(gen))
}

// quiesce pauses intake and waits until every record consumed so far is
// fully resolved and its offsets committed — the consistent cut a
// checkpoint captures: committed == read == resolved.
func (p *Pipeline) quiesce(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	wait := func(cond func() bool, what string) error {
		for !cond() {
			if time.Now().After(deadline) {
				return fmt.Errorf("core: checkpoint barrier timed out waiting for %s", what)
			}
			time.Sleep(time.Millisecond)
		}
		return nil
	}
	p.logmgr.Pause()
	if err := wait(p.logmgr.Idle, "log-manager pause"); err != nil {
		return err
	}
	// Intake parked: forwarded counts are final. Wait for the engine to
	// resolve everything consumed so far.
	if err := wait(func() bool {
		return p.engine.Metrics().Resolved >= p.forwarded.Load()
	}, "engine resolution"); err != nil {
		return err
	}
	// Resolved advances after the batch's outputs drain through the sink
	// (the engine's merged commit frontier), but an observer can see it
	// move before that barrier's commit hook has returned — so it alone
	// cannot certify the offsets are committed. The commit gate fires
	// under the same barrier lock at every barrier — empty ones included
	// — so zero committed lag means the final sink has run and every
	// consumed offset is committed.
	// Negative lag (committed ahead of the topic) also counts as drained:
	// a restored group's offsets can exceed a rebuilt in-memory topic
	// when heartbeat interleaving shifted absolute positions.
	if err := wait(func() bool { return p.logmgrLag() <= 0 }, "offset commit"); err != nil {
		return err
	}
	if p.detectEngine != nil {
		if err := wait(func() bool { return p.parsedReadLag() <= 0 }, "parsed-topic drain"); err != nil {
			return err
		}
		p.pumpPaused.Store(true)
		if err := wait(p.pumpIdle.Load, "parsed-pump pause"); err != nil {
			return err
		}
		if err := wait(func() bool {
			return p.detectEngine.Metrics().Resolved >= p.parsedForwarded.Load()
		}, "detector resolution"); err != nil {
			return err
		}
		if err := wait(func() bool { return p.parsedCommitLag() <= 0 }, "parsed offset commit"); err != nil {
			return err
		}
	}
	return nil
}

// parsedCommitLag is the parsed-pump group's committed lag.
func (p *Pipeline) parsedCommitLag() int64 {
	c, err := p.bus.Subscribe(parsedPumpGroup, ParsedTopic)
	if err != nil {
		return 0
	}
	return c.Lag()
}

func (p *Pipeline) resumeIntake() {
	p.pumpPaused.Store(false)
	p.logmgr.Resume()
}

// parsedReadLag is the parsed-pump group's read-frontier lag: messages
// published to the parsed topic the pump has not yet consumed.
func (p *Pipeline) parsedReadLag() int64 {
	c, err := p.bus.Subscribe(parsedPumpGroup, ParsedTopic)
	if err != nil {
		return 0
	}
	return c.ReadLag()
}

// buildCheckpoint assembles the checkpoint at an already-quiescent
// barrier.
func (p *Pipeline) buildCheckpoint() *recovery.Checkpoint {
	cp := &recovery.Checkpoint{
		SavedAt: p.cfg.Clock.Now(),
		Offsets: make(map[string]map[string]int64),
		Counters: map[string]uint64{
			"lines":       p.linesTotal.Value(),
			"parsed":      p.parsedTotal.Value(),
			"unparsed":    p.unparsed.Load(),
			"heartbeats":  p.hbTotal.Value(),
			"anomalies":   p.anomalies.Load(),
			"quarantined": p.quarantined.Load(),
		},
		Quarantine: p.quarantine.Pending(),
	}
	if offs := p.bus.GroupOffsets(logmgrGroup); len(offs) > 0 {
		cp.Offsets[logmgrGroup] = offs
	}
	// The parsed topic is derived state and deliberately not
	// checkpointed: the barrier guarantees it is fully drained into
	// detector state at the cut, and after a restore the parse stage
	// regenerates it from the replayed suffix on a fresh topic — whose
	// offsets share nothing with the pre-crash topic's.
	p.mu.Lock()
	if p.current != nil {
		cp.DefaultModelID = p.current.ID
	}
	if len(p.bySource) > 0 {
		cp.SourceModels = make(map[string]string, len(p.bySource))
		for source, m := range p.bySource {
			cp.SourceModels[source] = m.ID
		}
	}
	running := p.running
	p.mu.Unlock()
	for _, ne := range p.namedEngines() {
		cp.Engines = append(cp.Engines, engineSnapshot(ne.name, ne.engine, running))
	}
	return cp
}

type namedEngine struct {
	name   string
	engine *stream.Engine
}

func (p *Pipeline) namedEngines() []namedEngine {
	if p.detectEngine != nil {
		return []namedEngine{{"parse", p.engine}, {"detect", p.detectEngine}}
	}
	return []namedEngine{{"main", p.engine}}
}

func (p *Pipeline) engineByName(name string) *stream.Engine {
	for _, ne := range p.namedEngines() {
		if ne.name == name {
			return ne.engine
		}
	}
	return nil
}

// engineSnapshot serializes one engine's per-partition operator state.
// On a running engine the capture happens at a micro-batch barrier (the
// same lock step model updates use); on a stopped one the partitions are
// quiescent and read directly.
func engineSnapshot(name string, e *stream.Engine, running bool) recovery.EngineState {
	es := recovery.EngineState{Name: name}
	capture := func(partition int, states *stream.StateMap) {
		ps := recovery.PartitionState{Index: partition}
		states.Range(func(key string, v any) bool {
			st, ok := v.(*coreOpState)
			if !ok {
				return true
			}
			ks := recovery.KeyState{Key: key}
			if st.model != nil {
				ks.ModelID = st.model.ID
			}
			if st.parser != nil {
				sv := st.parser.SaveState()
				ks.Parser = &sv
			}
			if st.detector != nil {
				sv := st.detector.SaveState()
				ks.Detector = &sv
			}
			if st.volume != nil {
				sv := st.volume.SaveState()
				ks.Volume = &sv
			}
			ps.Keys = append(ps.Keys, ks)
			return true
		})
		sort.Slice(ps.Keys, func(i, j int) bool { return ps.Keys[i].Key < ps.Keys[j].Key })
		es.Partitions = append(es.Partitions, ps)
	}
	if running {
		e.Inspect(capture)
	} else {
		for i := 0; i < e.Partitions(); i++ {
			if sm, err := e.StateMap(i); err == nil {
				capture(i, sm)
			}
		}
	}
	sort.Slice(es.Partitions, func(i, j int) bool { return es.Partitions[i].Index < es.Partitions[j].Index })
	return es
}

// Restore loads the newest checkpoint into a freshly constructed, not
// yet started pipeline: store snapshot, cumulative counters, model
// bindings, per-partition operator state, pending quarantine strikes,
// and the committed bus offsets (installed via SeekGroup so consumption
// resumes exactly at the cut once the input is replayed onto the bus).
// Returns false when the checkpoint directory holds no checkpoint.
func (p *Pipeline) Restore() (bool, error) {
	if p.ckpt == nil {
		return false, fmt.Errorf("core: recovery disabled (no checkpoint dir)")
	}
	p.mu.Lock()
	running := p.running
	p.mu.Unlock()
	if running {
		return false, fmt.Errorf("core: restore requires a stopped pipeline")
	}
	cp, ok, err := p.ckpt.Load()
	if err != nil || !ok {
		return false, err
	}
	if err := p.ckpt.RestoreStore(cp, p.store); err != nil {
		return false, err
	}
	p.restoreCounters(cp.Counters)
	if err := p.restoreModels(cp); err != nil {
		return false, err
	}
	if err := p.restoreEngines(cp.Engines); err != nil {
		return false, err
	}
	p.quarantine.Restore(cp.Quarantine, cp.Counters["quarantined"])
	for group, offs := range cp.Offsets {
		for pk, off := range offs {
			topic, part, err := bus.SplitPartitionKey(pk)
			if err != nil {
				return false, err
			}
			p.bus.SeekGroup(group, topic, part, off)
		}
	}
	p.ckptStatusMu.Lock()
	p.ckptLastGen = cp.Generation
	p.ckptStatusMu.Unlock()
	p.events.Record(obs.EventCheckpoint, "restore",
		fmt.Sprintf("restored generation %d", cp.Generation), int64(cp.Generation))
	return true, nil
}

// restoreCounters rebases the cumulative conservation counters on a
// fresh pipeline's zeroed registry. Labeled per-type anomaly counters
// are not restored — they are diagnostics, not conservation inputs.
func (p *Pipeline) restoreCounters(c map[string]uint64) {
	p.linesTotal.Add(c["lines"])
	p.parsedTotal.Add(c["parsed"])
	p.unparsedTotal.Add(c["unparsed"])
	p.unparsed.Store(c["unparsed"])
	p.hbTotal.Add(c["heartbeats"])
	p.anomalies.Store(c["anomalies"])
	p.quarantined.Store(c["quarantined"])
	if p.quarantinedTotal != nil {
		p.quarantinedTotal.Add(c["quarantined"])
	}
}

// restoreModels rebinds the default and per-source models by ID against
// the restored model storage.
func (p *Pipeline) restoreModels(cp *recovery.Checkpoint) error {
	if cp.DefaultModelID != "" {
		m, err := p.manager.Load(cp.DefaultModelID)
		if err != nil {
			return fmt.Errorf("core: restore default model %q: %w", cp.DefaultModelID, err)
		}
		p.installModel("", m)
	}
	for source, id := range cp.SourceModels {
		m, err := p.manager.Load(id)
		if err != nil {
			return fmt.Errorf("core: restore model %q for source %q: %w", id, source, err)
		}
		p.installModel(source, m)
	}
	return nil
}

// restoreEngines seeds the engines' per-partition state maps with
// rebuilt operator states. Must run before Start (the partitions are not
// yet live).
func (p *Pipeline) restoreEngines(engines []recovery.EngineState) error {
	for _, es := range engines {
		e := p.engineByName(es.Name)
		if e == nil {
			return fmt.Errorf("core: restore: checkpoint names engine %q this topology does not run (Staged changed?)", es.Name)
		}
		for _, ps := range es.Partitions {
			sm, err := e.StateMap(ps.Index)
			if err != nil {
				return fmt.Errorf("core: restore: engine %q partition %d: %w (partition count changed?)", es.Name, ps.Index, err)
			}
			for _, ks := range ps.Keys {
				st := p.rebuildOpState(ks)
				if st != nil {
					sm.Put(ks.Key, st)
				}
			}
		}
	}
	return nil
}

// rebuildOpState reconstructs one coreOpState from its saved form,
// binding it to the restored model for its source. Returns nil when the
// model is gone (the operator will lazily rebuild fresh state if the
// source reappears under a new model).
func (p *Pipeline) rebuildOpState(ks recovery.KeyState) *coreOpState {
	source := strings.TrimPrefix(ks.Key, "__op@")
	m := p.ModelFor(source)
	if m == nil {
		return nil
	}
	st := &coreOpState{model: m, modelID: modelIDFor(source)}
	if ks.Parser != nil {
		pp := p.cfg.Builder.Preprocessor
		if pp == nil {
			pp = preprocess.New(nil, nil)
		}
		st.parser = m.NewParser(pp.Clone())
		st.parser.Instrument(p.reg)
		st.parser.RestoreState(*ks.Parser)
	}
	if ks.Detector != nil {
		st.detector = m.NewDetector(p.cfg.Seq)
		st.detector.Instrument(p.reg)
		st.detector.SetTracer(p.cfg.Tracer)
		st.detector.SetRecorder(p.events)
		st.detector.RestoreState(*ks.Detector)
	}
	if ks.Volume != nil && m.Volume != nil {
		st.volume = volume.New(m.Volume, p.cfg.Volume)
		st.volume.RestoreState(*ks.Volume)
	}
	return st
}

// Kill simulates a crash: all loops stop immediately, no further offsets
// commit, in-flight and buffered records are abandoned. Unlike Stop
// nothing drains — the next pipeline recovers from the last checkpoint.
// Only available with recovery enabled (tests and chaos harnesses).
func (p *Pipeline) Kill() {
	p.mu.Lock()
	if !p.running {
		p.mu.Unlock()
		return
	}
	p.running = false
	servers := p.wireServers
	p.wireServers = nil
	svc := p.intakeSvc
	p.mu.Unlock()
	p.killed.Store(true)
	p.commitsOn.Store(false)
	for _, srv := range servers {
		srv.Close()
	}
	if svc != nil {
		// Crash semantics: the front door aborts without draining —
		// blocked admissions shed, connections close.
		svc.Close()
	}
	// Close the engines first so racing Sends fail fast (ErrClosed)
	// instead of queueing on input channels nobody drains, then abort
	// their run loops without draining.
	p.engine.Close()
	if p.detectEngine != nil {
		p.detectEngine.Close()
	}
	if p.engineCancel != nil {
		p.engineCancel()
	}
	p.cancel()
	if p.detectEngine != nil {
		close(p.pumpDone)
		<-p.pumpExited
	}
	<-p.runErr
	p.wg.Wait()
	// Crash semantics extend to storage: release the engine without
	// flushing — unsynced mutations die with the process, exactly what
	// the recovery tests must survive.
	p.store.Abort()
	p.events.Record(obs.EventShutdown, "kill", "crash simulated: loops aborted, nothing drained", 0)
}
