package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"loglens/internal/clock"
	"loglens/internal/intake"
	"loglens/internal/obs"
	"loglens/internal/testutil"
)

// syslogFrame wraps a corpus line in a well-formed RFC 3164 envelope so
// the intake listener attributes it to tenant "web01" and forwards the
// corpus line as the message body.
func syslogFrame(line string) string {
	return "<13>Feb  5 17:32:18 web01 app: " + line
}

// TestConservationNetworkPath extends the lines-conservation invariant
// across the network boundary: every line accepted by the intake
// listeners is exactly one of parsed, unparsed, quarantined, or shed —
// with the sheds accounted in intake_lines_shed_total and the flight
// recorder. The intake admission runs on its own fake clock (tokens
// never refill), so the shed split is exact while the pipeline's
// micro-batches run on the wall clock.
func TestConservationNetworkPath(t *testing.T) {
	const nParsed, nUnparsed = 6, 4
	const burst = nParsed + nUnparsed // TCP sends exactly the burst
	const nShed = 8                   // UDP datagrams past the empty bucket
	training, prod := conservationCorpus(nParsed, nUnparsed)

	intakeClk := clock.NewFake()
	ops := obs.New(clock.New())
	p, err := New(Config{
		DisableHeartbeat: true,
		Ops:              ops,
		Intake: intake.Config{
			SyslogTCP:   "127.0.0.1:0",
			SyslogUDP:   "127.0.0.1:0",
			TenantRate:  1, // refill is irrelevant: the fake clock never moves
			TenantBurst: burst,
			Clock:       intakeClk,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Train("net-conservation", training); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	svc := p.Intake()
	if svc == nil {
		t.Fatal("intake service not running")
	}

	// The burst flows in over TCP: 6 lines the model parses, 4 it
	// cannot.
	conn, err := net.Dial("tcp", svc.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, line := range prod {
		fmt.Fprintf(&buf, "%s\n", syslogFrame(line))
	}
	if _, err := conn.Write(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		return svc.Stats().Published == burst
	}, "TCP lines not published to the bus")

	// The bucket is now empty and the fake clock never refills it: every
	// UDP datagram sheds with reason "rate".
	udp, err := net.Dial("udp", svc.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()
	for i := 0; i < nShed; i++ {
		fmt.Fprintf(udp, "%s", syslogFrame(fmt.Sprintf("flood line %d", i)))
		want := uint64(burst + i + 1)
		testutil.WaitUntil(t, 10*time.Second, func() bool {
			return svc.Stats().Accepted == want
		}, "datagram not accounted")
	}

	if err := p.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}

	snap := p.Metrics().Snapshot()
	accepted := snap.Counter("intake_lines_accepted_total")
	shed := snap.CounterSum("intake_lines_shed_total")
	parsed := snap.Counter("core_parsed_total")
	unparsed := snap.Counter("core_unparsed_total")
	quarantined := p.QuarantinedCount()

	if accepted != burst+nShed {
		t.Fatalf("intake_lines_accepted_total = %d, want %d", accepted, burst+nShed)
	}
	if shed != nShed {
		t.Errorf("intake_lines_shed_total = %d, want %d", shed, nShed)
	}
	if got := snap.Counter("intake_lines_shed_total", "reason", intake.ShedRate); got != nShed {
		t.Errorf("shed{reason=rate} = %d, want %d", got, nShed)
	}
	if parsed != nParsed || unparsed != nUnparsed {
		t.Errorf("parsed/unparsed = %d/%d, want %d/%d", parsed, unparsed, nParsed, nUnparsed)
	}
	// The network-path conservation invariant.
	if accepted != parsed+unparsed+quarantined+shed {
		t.Errorf("conservation broken: accepted %d != parsed %d + unparsed %d + quarantined %d + shed %d",
			accepted, parsed, unparsed, quarantined, shed)
	}
	// Every shed line landed in the flight recorder with its reason.
	evs := ops.Events.Events(obs.EventQuery{Type: obs.EventIntakeShed})
	var recorded int64
	for _, ev := range evs {
		if ev.Detail != intake.ShedRate || ev.Source != "web01" {
			t.Errorf("shed event = %+v, want tenant web01 reason rate", ev)
		}
		recorded += ev.Value
	}
	if recorded != nShed {
		t.Errorf("flight recorder shed lines = %d, want %d", recorded, nShed)
	}
	// The intake layer's own balance also closes.
	st := svc.Stats()
	if st.Accepted != st.Published+st.Shed {
		t.Errorf("intake balance broken: %+v", st)
	}
}

// TestGracefulShutdownDuringIngest is the kill-during-ingest e2e for the
// shutdown-ordering fix: lines acked over HTTP while traffic is still in
// flight must survive an orderly shutdown + final checkpoint + restart.
// The drain order (intake first, then the pipeline, then the checkpoint)
// is exactly what cmd/loglens runs on SIGTERM.
func TestGracefulShutdownDuringIngest(t *testing.T) {
	const tcpLines = 150
	dir := t.TempDir()
	training, _ := conservationCorpus(0, 0)

	p := newRecoveryPipeline(t, dir, false, func(cfg *Config) {
		cfg.Intake = intake.Config{
			SyslogTCP: "127.0.0.1:0",
			HTTP:      "127.0.0.1:0",
		}
	})
	if _, _, err := p.Train("shutdown-ingest", training); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	svc := p.Intake()

	// TCP traffic: written in full, no application-level ack.
	conn, err := net.Dial("tcp", svc.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for i := 0; i < tcpLines; i++ {
		fmt.Fprintf(&buf, "%s\n", syslogFrame(fmt.Sprintf("stream line %d", i)))
	}
	if _, err := conn.Write(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// HTTP traffic: each 200 response acks its batch. Acked lines are
	// the ones shutdown must not lose.
	var acked uint64
	for b := 0; b < 5; b++ {
		req := intake.IngestRequest{Tenant: "api"}
		for i := 0; i < 30; i++ {
			req.Lines = append(req.Lines, fmt.Sprintf("bulk line %d-%d", b, i))
		}
		body, _ := json.Marshal(req)
		resp, err := http.Post("http://"+svc.HTTPAddr()+"/api/ingest", "application/json",
			bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var ir intake.IngestResponse
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: status %d", b, resp.StatusCode)
		}
		acked += uint64(ir.Accepted)
	}

	// Orderly shutdown while traffic may still sit in the intake queue —
	// the cmd/loglens SIGTERM order: intake drains into the bus, the
	// pipeline drains into the engines, the final checkpoint seals it.
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := svc.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	st := svc.Stats()
	if st.Accepted != st.Published+st.Shed {
		t.Fatalf("intake balance broken at shutdown: %+v", st)
	}
	if st.Published < acked {
		t.Fatalf("published %d < acked %d: acked lines died in the intake queue", st.Published, acked)
	}
	if err := p.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	published := st.Published
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}

	// Restart: the restored counters must account every published line —
	// in particular every acked one.
	p2 := newRecoveryPipeline(t, dir, false, nil)
	restored, err := p2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if !restored {
		t.Fatal("no checkpoint found after shutdown")
	}
	snap := p2.Metrics().Snapshot()
	lines := snap.Counter("core_lines_total")
	parsed := snap.Counter("core_parsed_total")
	unparsed := snap.Counter("core_unparsed_total")
	if lines != published {
		t.Errorf("restored core_lines_total = %d, want %d published", lines, published)
	}
	if lines < acked {
		t.Errorf("restored lines %d < acked %d: acked lines lost across restart", lines, acked)
	}
	if parsed+unparsed+p2.QuarantinedCount() != lines {
		t.Errorf("restored conservation broken: parsed %d + unparsed %d + quarantined %d != lines %d",
			parsed, unparsed, p2.QuarantinedCount(), lines)
	}
}

// TestIntakeRestartAcrossStopStart: a pipeline stop/start cycle (the
// restore path) must bring up fresh intake listeners, not fail on the
// drained ones.
func TestIntakeRestartAcrossStopStart(t *testing.T) {
	training, _ := conservationCorpus(0, 0)
	p, err := New(Config{
		DisableHeartbeat: true,
		Intake:           intake.Config{SyslogTCP: "127.0.0.1:0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Train("restart", training); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	first := p.Intake().TCPAddr()
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatalf("second Start: %v", err)
	}
	defer p.Stop()
	svc := p.Intake()
	if svc.TCPAddr() == "" || svc.TCPAddr() == first {
		t.Fatalf("second run listener = %q (first %q), want a fresh listener", svc.TCPAddr(), first)
	}
	conn, err := net.Dial("tcp", svc.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "%s\n", syslogFrame("after restart"))
	conn.Close()
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		return svc.Stats().Published == 1
	}, "line not published after restart")
}
