package core

import (
	"encoding/json"
	"strconv"
	"time"

	"loglens/internal/anomaly"
	"loglens/internal/bus"
	"loglens/internal/latency"
	"loglens/internal/logtypes"
	"loglens/internal/metrics"
	"loglens/internal/preprocess"
	"loglens/internal/stream"
	"loglens/internal/volume"
)

// ParsedTopic is the bus topic carrying parsed logs between the parser
// stage and the sequence-detector stage in the staged topology — the
// Figure 1 deployment shape, where the log parser and the log sequence
// anomaly detector are separate services communicating over Kafka.
const ParsedTopic = "parsed"

// parseOperator is the parser stage of the staged topology: stateless
// parsing only. Parsed logs are emitted downstream; unparsed logs are
// stateless anomalies.
func (p *Pipeline) parseOperator(ctx *stream.Context, rec stream.Record) []any {
	l, ok := rec.Value.(logtypes.Log)
	if !ok {
		return nil // heartbeats bypass the parse stage
	}
	if p.ckpt != nil {
		p.checkPoison(l)
	}
	sv, _ := ctx.States().Get("__op@" + l.Source)
	st, _ := sv.(*coreOpState)
	if st == nil {
		m := p.effectiveModel(ctx, l.Source)
		if m == nil {
			return nil
		}
		pp := p.cfg.Builder.Preprocessor
		if pp == nil {
			pp = preprocess.New(nil, nil)
		}
		st = &coreOpState{model: m, modelID: modelIDFor(l.Source), parser: m.NewParser(pp.Clone())}
		st.parser.Instrument(p.reg)
		if p.lat != nil {
			st.lat = p.lat.Tenant(l.Source)
		}
		ctx.States().Put("__op@"+l.Source, st)
	} else if m := p.modelByID(ctx, st.modelID); m == nil {
		return nil
	} else if st.model != m {
		st.parser.SetPatterns(m.Patterns)
		st.model = m
	}

	if p.cfg.Tracer != nil {
		p.cfg.Tracer.Stamp(l.Source, l.Seq, metrics.StagePartition, "p="+strconv.Itoa(ctx.Partition()))
	}
	// Same instrumentation scheme as the fused operator: the deliver and
	// parse stage histograms ride a 1-in-16 per-source sample, with
	// deliver closing at the engine's batch pickup stamp.
	var pickedUp time.Time
	sampled := false
	if p.lat != nil {
		sampled = st.tick&15 == 0
		st.tick++
		if sampled {
			p.lat.Observe(latency.StageDeliver, ctx.BatchStart().Sub(l.Arrival))
			pickedUp = p.cfg.Clock.Now()
		}
	}
	pl, err := st.parser.Parse(l)
	if err != nil {
		p.unparsed.Add(1)
		p.unparsedTotal.Inc()
		if p.lat != nil {
			now := p.cfg.Clock.Now()
			if sampled {
				p.lat.Observe(latency.StageParse, now.Sub(pickedUp))
			}
			e2e := now.Sub(l.Arrival)
			p.lineSeconds.Observe(e2e.Seconds())
			p.lat.CheckSLO(e2e)
			// Unparsed lines end at the parse stage in the staged
			// topology, so they advance freshness here (event time =
			// arrival: nothing was extracted).
			n := l.Arrival.UnixNano()
			p.lat.Partition(ctx.Partition()).Note(n, n)
			st.lat.Note(n, n)
		} else {
			p.lineSeconds.Observe(p.cfg.Clock.Since(l.Arrival).Seconds())
		}
		if p.cfg.Tracer != nil {
			p.cfg.Tracer.Stamp(l.Source, l.Seq, metrics.StageParser, "unparsed")
		}
		return []any{anomaly.Record{
			Type:      anomaly.UnparsedLog,
			Severity:  anomaly.Warning,
			Reason:    "log matches no pattern",
			Timestamp: l.Arrival,
			Source:    l.Source,
			Logs:      []logtypes.Log{l},
		}}
	}
	p.parsedTotal.Inc()
	if sampled {
		p.lat.Observe(latency.StageParse, p.cfg.Clock.Now().Sub(pickedUp))
	}
	if p.cfg.Tracer != nil {
		p.cfg.Tracer.Stamp(l.Source, l.Seq, metrics.StageParser, "pattern="+strconv.Itoa(pl.PatternID))
	}
	if p.hb != nil && pl.HasTimestamp {
		p.hb.Observe(l.Source, pl.Timestamp)
	}
	return []any{pl}
}

// parseSink routes the parser stage's outputs: anomalies to the common
// sink, parsed logs onto the bus for the detector stage.
func (p *Pipeline) parseSink(o any) {
	switch v := o.(type) {
	case anomaly.Record:
		p.sink(v)
	case *logtypes.ParsedLog:
		data, err := json.Marshal(v)
		if err != nil {
			return
		}
		p.bus.Publish(ParsedTopic, v.Source, data, nil)
	}
}

// detectOperator is the detector stage: stateful sequence detection plus
// the optional volume application, fed by parsed logs from the bus and by
// heartbeat records.
func (p *Pipeline) detectOperator(ctx *stream.Context, rec stream.Record) []any {
	source := rec.Key
	if pl, ok := rec.Value.(*logtypes.ParsedLog); ok {
		source = pl.Source
	}
	sv, _ := ctx.States().Get("__op@" + source)
	st, _ := sv.(*coreOpState)
	if st == nil {
		m := p.effectiveModel(ctx, source)
		if m == nil {
			return nil
		}
		st = &coreOpState{model: m, modelID: modelIDFor(source), detector: m.NewDetector(p.cfg.Seq)}
		st.detector.Instrument(p.reg)
		st.detector.SetTracer(p.cfg.Tracer)
		st.detector.SetRecorder(p.events)
		if m.Volume != nil {
			st.volume = volume.New(m.Volume, p.cfg.Volume)
		}
		if p.lat != nil {
			st.lat = p.lat.Tenant(source)
		}
		ctx.States().Put("__op@"+source, st)
	} else if m := p.modelByID(ctx, st.modelID); m == nil {
		return nil
	} else if st.model != m {
		st.detector.SetModel(m.Sequence)
		switch {
		case m.Volume == nil:
			st.volume = nil
		case st.volume == nil:
			st.volume = volume.New(m.Volume, p.cfg.Volume)
		default:
			st.volume.SetProfile(m.Volume)
		}
		st.model = m
	}

	if rec.Heartbeat {
		recs := st.detector.HeartbeatFor(rec.Key, rec.Time)
		if st.volume != nil {
			recs = append(recs, st.volume.Advance(rec.Time)...)
		}
		return wrapRecords(recs)
	}
	pl, ok := rec.Value.(*logtypes.ParsedLog)
	if !ok {
		return nil
	}
	var pickedUp time.Time
	sampled := false
	if p.lat != nil {
		sampled = st.tick&15 == 0
		st.tick++
		if sampled {
			pickedUp = p.cfg.Clock.Now()
		}
	}
	recs := st.detector.Process(pl)
	if st.volume != nil {
		recs = append(recs, st.volume.Process(pl)...)
	}
	// End-to-end latency for staged lines is closed here, after the
	// second stage (the parse stage only observes unparsed lines).
	if p.lat != nil {
		now := p.cfg.Clock.Now()
		if sampled {
			p.lat.Observe(latency.StageDetect, now.Sub(pickedUp))
		}
		e2e := now.Sub(pl.Arrival)
		p.lineSeconds.Observe(e2e.Seconds())
		p.lat.CheckSLO(e2e)
		p.lat.Partition(ctx.Partition()).Note(pl.EventTime().UnixNano(), pl.Arrival.UnixNano())
		st.lat.Note(pl.EventTime().UnixNano(), pl.Arrival.UnixNano())
	} else {
		p.lineSeconds.Observe(p.cfg.Clock.Since(pl.Arrival).Seconds())
	}
	return wrapRecords(recs)
}

// pumpParsed consumes the parsed topic into the detector stage until the
// consumer's context is done. With recovery enabled the consumer runs
// with auto-commit off (the detect engine's commit gate advances the
// group) and honors checkpoint pauses.
func (p *Pipeline) pumpParsed(done <-chan struct{}) {
	consumer, err := p.bus.Subscribe(parsedPumpGroup, ParsedTopic)
	if err != nil {
		return
	}
	if p.parsedCommits != nil {
		consumer.DisableAutoCommit()
	}
	forward := func(msgs []bus.Message) {
		for _, msg := range msgs {
			p.forwardParsed(msg.Value)
		}
		if p.parsedCommits != nil {
			// Watermark in the detect engine's frontier unit (accepted
			// seqs), not parsedForwarded: heartbeats count toward the
			// latter but carry no frontier seq, so a forwarded-based
			// watermark would never be reached once a heartbeat flows.
			p.parsedCommits.register(msgs, p.detectEngine.Accepted())
		}
	}
	for {
		select {
		case <-done:
			if p.killed.Load() {
				// Crash simulation: abandon, the checkpoint recovers.
				return
			}
			// Final drain of anything already published (polls are
			// capped, so loop until empty).
			for {
				msgs := consumer.TryPoll(1024)
				if len(msgs) == 0 {
					return
				}
				forward(msgs)
			}
		default:
		}
		if p.pumpPaused.Load() {
			p.pumpIdle.Store(true)
			time.Sleep(time.Millisecond)
			continue
		}
		p.pumpIdle.Store(false)
		msgs := consumer.TryPoll(1024)
		if len(msgs) == 0 {
			time.Sleep(time.Millisecond)
			continue
		}
		forward(msgs)
	}
}

func (p *Pipeline) forwardParsed(data []byte) {
	var pl logtypes.ParsedLog
	if err := json.Unmarshal(data, &pl); err != nil {
		return
	}
	p.parsedForwarded.Add(1)
	p.detectEngine.Send(stream.Record{Key: pl.Source, Value: &pl, Time: pl.EventTime()})
}

// parsedLag reports unconsumed parsed-topic messages.
func (p *Pipeline) parsedLag() int64 {
	c, err := p.bus.Subscribe(parsedPumpGroup, ParsedTopic)
	if err != nil {
		return 0
	}
	return c.Lag()
}
