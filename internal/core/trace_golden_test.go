package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"loglens/internal/clock"
	"loglens/internal/logtypes"
	"loglens/internal/metrics"
	"loglens/internal/testutil"
)

var update = flag.Bool("update", false, "rewrite golden files with observed output")

// TestTraceGolden follows ONE line — web#3, the "req-901 served" line of
// the quickstart corpus, a request served without ever being received —
// through every pipeline stage and compares its stage stamps against a
// checked-in golden file. The stamps of a single line are causally
// ordered (agent → bus → partition → parser → seqdetect → anomaly), so
// the sequence is deterministic regardless of how the engine splits
// batches. Regenerate with: go test ./internal/core -run TraceGolden -update
func TestTraceGolden(t *testing.T) {
	// Quickstart training corpus: 200 request pairs.
	var training []logtypes.Log
	base := time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("req-%03d", i)
		t0 := base.Add(time.Duration(i*5) * time.Second)
		training = append(training,
			logtypes.Log{Source: "web", Seq: uint64(2*i + 1), Raw: fmt.Sprintf(
				"%s 10.0.0.%d request %s received path /api/items/%d",
				t0.Format("2006/01/02 15:04:05.000"), i%5+1, id, i%40)},
			logtypes.Log{Source: "web", Seq: uint64(2*i + 2), Raw: fmt.Sprintf(
				"%s 10.0.0.%d request %s served bytes %d",
				t0.Add(time.Duration(1+i%2)*time.Second).Format("2006/01/02 15:04:05.000"), i%5+1, id, 512+i)},
		)
	}

	// Trace exactly the one line whose journey we compare. Tracing more
	// than one line would interleave stamps across partitions
	// nondeterministically.
	tr := metrics.NewRecordingTracer(func(source string, seq uint64) bool {
		return source == "web" && seq == 3
	})
	fc := clock.NewFake()
	p, err := New(Config{Clock: fc, DisableHeartbeat: true, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Train("quickstart", training); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	ag, err := p.Agent("web", 0)
	if err != nil {
		t.Fatal(err)
	}
	prod := base.Add(time.Hour)
	stamp := func(d time.Duration) string { return prod.Add(d).Format("2006/01/02 15:04:05.000") }
	lines := []string{
		stamp(0) + " 10.0.0.1 request req-900 received path /api/items/7",
		stamp(time.Second) + " 10.0.0.1 request req-900 served bytes 600",
		stamp(2*time.Second) + " 10.0.0.2 request req-901 served bytes 999", // web#3: missing begin
		"segfault at 0x0 in worker thread",
	}
	for _, line := range lines {
		if err := ag.Send(line); err != nil {
			t.Fatal(err)
		}
	}
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		return p.forwarded.Load() == uint64(len(lines))
	}, "log manager did not forward every line")
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}

	got := strings.Join(tr.Lines(), "\n") + "\n"
	golden := filepath.Join("testdata", "trace_web3.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("trace mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
