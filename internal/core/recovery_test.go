package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"loglens/internal/agent"
	"loglens/internal/anomaly"
	"loglens/internal/chaos"
	"loglens/internal/clock"
	"loglens/internal/obs"
	"loglens/internal/recovery"
	"loglens/internal/store"
	"loglens/internal/testutil"
)

// newRecoveryPipeline builds a recovery-enabled pipeline on the wall
// clock (batches must fire on their own so checkpoint barriers resolve).
func newRecoveryPipeline(t *testing.T, dir string, staged bool, mutate func(*Config)) *Pipeline {
	t.Helper()
	cfg := Config{
		DisableHeartbeat: true,
		Staged:           staged,
		Recovery:         RecoveryConfig{Dir: dir},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func feed(t *testing.T, ag *agent.Agent, lines []string) {
	t.Helper()
	for _, l := range lines {
		if err := ag.Send(l); err != nil {
			t.Fatal(err)
		}
	}
}

// recoveryResult is the end-state a run is judged by: the conservation
// counters and the multiset of stored anomalies.
type recoveryResult struct {
	lines, parsed, unparsed, quarantined, anomalies uint64
	sig                                             []string
}

func collectResult(p *Pipeline) recoveryResult {
	snap := p.Metrics().Snapshot()
	return recoveryResult{
		lines:       snap.Counter("core_lines_total"),
		parsed:      snap.Counter("core_parsed_total"),
		unparsed:    snap.Counter("core_unparsed_total"),
		quarantined: p.QuarantinedCount(),
		anomalies:   p.AnomalyCount(),
		sig:         anomalySignature(p),
	}
}

// anomalySignature is the stored-anomaly multiset, timestamp-free (the
// wall clock makes arrival times run-dependent; identity does not).
func anomalySignature(p *Pipeline) []string {
	hits := p.Anomalies(store.Query{})
	sig := make([]string, 0, len(hits))
	for _, h := range hits {
		sig = append(sig, fmt.Sprintf("%v|%v|%v|%v|%v",
			h.Doc["type"], h.Doc["source"], h.Doc["eventId"], h.Doc["automaton"], h.Doc["logCount"]))
	}
	sort.Strings(sig)
	return sig
}

func assertConservation(t *testing.T, res recoveryResult, wantLines uint64) {
	t.Helper()
	if res.lines != wantLines {
		t.Errorf("core_lines_total = %d, want %d", res.lines, wantLines)
	}
	if res.parsed+res.unparsed+res.quarantined != res.lines {
		t.Errorf("conservation broken: parsed %d + unparsed %d + quarantined %d != lines %d",
			res.parsed, res.unparsed, res.quarantined, res.lines)
	}
}

func assertSameResult(t *testing.T, got, golden recoveryResult) {
	t.Helper()
	if got.lines != golden.lines || got.parsed != golden.parsed ||
		got.unparsed != golden.unparsed || got.quarantined != golden.quarantined {
		t.Errorf("counters diverge from golden: got %+v, want %+v", got, golden)
	}
	if got.anomalies != golden.anomalies {
		t.Errorf("anomaly count = %d, golden %d", got.anomalies, golden.anomalies)
	}
	if len(got.sig) != len(golden.sig) {
		t.Fatalf("stored anomalies = %d, golden %d", len(got.sig), len(golden.sig))
	}
	for i := range got.sig {
		if got.sig[i] != golden.sig[i] {
			t.Errorf("anomaly %d diverges: got %q, golden %q", i, got.sig[i], golden.sig[i])
		}
	}
}

// goldenRun processes the whole corpus uninterrupted on a
// recovery-enabled pipeline and returns the reference end state.
func goldenRun(t *testing.T, staged bool, prod []string) recoveryResult {
	t.Helper()
	training, _ := conservationCorpus(0, 0)
	p := newRecoveryPipeline(t, t.TempDir(), staged, nil)
	if _, _, err := p.Train("recovery", training); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	ag, err := p.Agent("web", 0)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, ag, prod)
	if err := p.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	res := collectResult(p)
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	return res
}

// crashRun checkpoints after ckptAt lines, feeds up to killAt, crashes
// the pipeline (Kill: no drain, no commits), then builds a fresh
// pipeline on the same checkpoint directory, restores, replays the full
// corpus (the committed prefix is skipped via the restored offsets), and
// returns the end state.
func crashRun(t *testing.T, staged bool, prod []string, ckptAt, killAt int) recoveryResult {
	t.Helper()
	training, _ := conservationCorpus(0, 0)
	dir := t.TempDir()

	p1 := newRecoveryPipeline(t, dir, staged, nil)
	if _, _, err := p1.Train("recovery", training); err != nil {
		t.Fatal(err)
	}
	if err := p1.Start(); err != nil {
		t.Fatal(err)
	}
	ag1, err := p1.Agent("web", 0)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, ag1, prod[:ckptAt])
	if err := p1.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	gen, err := p1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if gen == 0 {
		t.Fatal("checkpoint generation 0")
	}
	// Post-checkpoint traffic is in flight (bus, engine queues, maybe
	// committed) when the crash hits; none of it may be lost or double
	// up in the end state.
	feed(t, ag1, prod[ckptAt:killAt])
	p1.Kill()

	p2 := newRecoveryPipeline(t, dir, staged, nil)
	restored, err := p2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if !restored {
		t.Fatal("Restore found no checkpoint")
	}
	if m := p2.Model(); m == nil || m.ID != "recovery" {
		t.Fatalf("restored model = %v, want %q", m, "recovery")
	}
	if err := p2.Start(); err != nil {
		t.Fatal(err)
	}
	ag2, err := p2.Agent("web", 0)
	if err != nil {
		t.Fatal(err)
	}
	// The operator replays the whole retained input after a crash; the
	// restored offsets skip everything the checkpoint already covers
	// (partitioning is deterministic, so offsets line up).
	feed(t, ag2, prod)
	if err := p2.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	res := collectResult(p2)
	if err := p2.Stop(); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCrashRecoveryKillPoints: kill the pipeline at several points
// relative to the last checkpoint, restore from it, replay, and require
// the exact end state of the uninterrupted golden run — same
// conservation balance, same anomaly multiset (none missing, none
// duplicated).
func TestCrashRecoveryKillPoints(t *testing.T) {
	const nParsed, nUnparsed = 40, 8
	_, prod := conservationCorpus(nParsed, nUnparsed)
	n := uint64(len(prod))

	golden := goldenRun(t, false, prod)
	assertConservation(t, golden, n)
	if golden.unparsed != nUnparsed {
		t.Fatalf("golden unparsed = %d, want %d", golden.unparsed, nUnparsed)
	}

	points := []struct {
		name           string
		ckptAt, killAt int
	}{
		{"empty-checkpoint-kill-early", 0, 12},
		{"mid-checkpoint-kill-mid", 20, 35},
		{"late-checkpoint-kill-at-end", 40, len(prod)},
	}
	for _, pt := range points {
		t.Run(pt.name, func(t *testing.T) {
			res := crashRun(t, false, prod, pt.ckptAt, pt.killAt)
			assertConservation(t, res, n)
			assertSameResult(t, res, golden)
		})
	}
}

// TestCrashRecoveryStaged runs one kill-and-restore cycle through the
// staged topology, exercising the second commit gate (parsed-pump group)
// and the two-stage quiescent barrier.
func TestCrashRecoveryStaged(t *testing.T) {
	const nParsed, nUnparsed = 30, 6
	_, prod := conservationCorpus(nParsed, nUnparsed)
	n := uint64(len(prod))

	golden := goldenRun(t, true, prod)
	assertConservation(t, golden, n)

	res := crashRun(t, true, prod, 18, 30)
	assertConservation(t, res, n)
	assertSameResult(t, res, golden)
}

// TestCommitGateWithLiveHeartbeats pins the watermark-unit contract of
// the commit gate: heartbeats increment the forwarded counters but are
// seq-less in the engine, so commit watermarks must be taken from
// Engine.Accepted (the frontier's unit). A watermark based on the
// forwarded count would sit permanently above the frontier after the
// first heartbeat and the offsets registered behind it would never
// commit — Drain and every later Checkpoint would hang on committed
// lag. Regression for a hang found driving the full binary, where the
// wall-clock heartbeat controller interleaves with file replay.
func TestCommitGateWithLiveHeartbeats(t *testing.T) {
	for _, staged := range []bool{false, true} {
		t.Run(fmt.Sprintf("staged=%v", staged), func(t *testing.T) {
			const nParsed, nUnparsed = 20, 4
			training, prod := conservationCorpus(nParsed, nUnparsed)
			hbAt := time.Date(2016, 2, 23, 10, 0, 30, 0, time.UTC)

			p := newRecoveryPipeline(t, t.TempDir(), staged, func(cfg *Config) {
				cfg.Partitions = 4
			})
			if _, _, err := p.Train("recovery", training); err != nil {
				t.Fatal(err)
			}
			if err := p.Start(); err != nil {
				t.Fatal(err)
			}
			ag, err := p.Agent("web", 0)
			if err != nil {
				t.Fatal(err)
			}
			// Heartbeats before, between, and after the log traffic: each
			// poll batch around them registers offsets that must still
			// commit even though the heartbeat advanced no frontier seq.
			p.InjectHeartbeat("web", hbAt)
			feed(t, ag, prod[:len(prod)/2])
			p.InjectHeartbeat("web", hbAt.Add(time.Second))
			feed(t, ag, prod[len(prod)/2:])
			p.InjectHeartbeat("web", hbAt.Add(2*time.Second))
			if err := p.Drain(30 * time.Second); err != nil {
				t.Fatalf("drain with live heartbeats: %v", err)
			}
			if _, err := p.Checkpoint(); err != nil {
				t.Fatalf("checkpoint with live heartbeats: %v", err)
			}
			// The gate itself: every consumed offset commits once the
			// engine retires the records around the heartbeats.
			deadline := time.Now().Add(10 * time.Second)
			for p.logmgrLag() > 0 {
				if time.Now().After(deadline) {
					t.Fatalf("committed lag stuck at %d with live heartbeats", p.logmgrLag())
				}
				time.Sleep(time.Millisecond)
			}
			res := collectResult(p)
			assertConservation(t, res, uint64(len(prod)))
			if err := p.Stop(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPoisonQuarantineEndToEnd: a record that panics the operator on
// every delivery must land on the deadletter topic after exactly K
// strikes — queryable with its error context — while every other record
// on the partition keeps flowing, and the balance closes with the
// quarantined term.
func TestPoisonQuarantineEndToEnd(t *testing.T) {
	const nParsed, nUnparsed = 20, 4
	training, prod := conservationCorpus(nParsed, nUnparsed)
	// Two poison lines surrounded by healthy traffic on the same
	// source (hence the same partition): a stalled partition would
	// strand the suffix and break the balance.
	prod = append(prod[:10], append([]string{
		"POISON pill one", "POISON pill two",
	}, prod[10:]...)...)
	n := uint64(len(prod))

	p := newRecoveryPipeline(t, t.TempDir(), false, func(cfg *Config) {
		cfg.Recovery.PoisonMarker = "POISON"
		cfg.Recovery.PoisonStrikes = 3
		cfg.Ops = obs.New(clock.New())
	})
	if _, _, err := p.Train("poison", training); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	ag, err := p.Agent("web", 0)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, ag, prod)
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		return p.QuarantinedCount() == 2
	}, "poison records never quarantined")
	if err := p.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	res := collectResult(p)
	assertConservation(t, res, n)
	if res.parsed != nParsed || res.unparsed != nUnparsed {
		t.Errorf("parsed/unparsed = %d/%d, want %d/%d — a poison record stalled healthy traffic",
			res.parsed, res.unparsed, nParsed, nUnparsed)
	}

	letters := p.DeadLetters(10)
	if len(letters) != 2 {
		t.Fatalf("deadletter topic holds %d records, want 2", len(letters))
	}
	for _, m := range letters {
		if m.Headers[recovery.HeaderDLSource] != "web" {
			t.Errorf("deadletter source = %q, want web", m.Headers[recovery.HeaderDLSource])
		}
		if m.Headers[recovery.HeaderDLStrikes] != "3" {
			t.Errorf("deadletter strikes = %q, want 3", m.Headers[recovery.HeaderDLStrikes])
		}
		if !strings.Contains(m.Headers[recovery.HeaderDLError], "poison record") {
			t.Errorf("deadletter error context = %q", m.Headers[recovery.HeaderDLError])
		}
		if !strings.HasPrefix(string(m.Value), "POISON pill") {
			t.Errorf("deadletter payload = %q", m.Value)
		}
	}
	// Each poison record was struck exactly K times: 2 records x 3
	// strikes = 6 operator panics, 4 of them requeues.
	em := p.Engine().Metrics()
	if em.OperatorPanics != 6 {
		t.Errorf("operator panics = %d, want 6", em.OperatorPanics)
	}
	if em.Retried != 4 {
		t.Errorf("retried = %d, want 4", em.Retried)
	}
	if evs := p.Ops().Events.Events(obs.EventQuery{Type: obs.EventQuarantine}); len(evs) != 2 {
		t.Errorf("quarantine events = %d, want 2", len(evs))
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
}

// TestSupervisorRestartEndToEnd: a panic escaping the engine loop (here
// via an anomaly callback) is contained by the supervisor, which
// restarts the loop; traffic sent afterwards still processes, and the
// crash leaves a worker-crash event plus a degraded supervisor probe
// behind.
func TestSupervisorRestartEndToEnd(t *testing.T) {
	const nParsed, nUnparsed = 20, 3
	training, prod := conservationCorpus(nParsed, nUnparsed)

	ops := obs.New(clock.New())
	p := newRecoveryPipeline(t, t.TempDir(), false, func(cfg *Config) {
		cfg.Ops = ops
		cfg.Recovery.BackoffBase = time.Millisecond
	})
	if _, _, err := p.Train("supervised", training); err != nil {
		t.Fatal(err)
	}
	bombed := false
	p.OnAnomaly(func(anomaly.Record) {
		if !bombed {
			bombed = true
			panic("test: anomaly callback bomb")
		}
	})
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	ag, err := p.Agent("web", 0)
	if err != nil {
		t.Fatal(err)
	}
	// The first unparsed line detonates the bomb inside the engine
	// loop's sink; the supervisor must bring the loop back.
	feed(t, ag, []string{"segfault boom at 0x0 in worker thread"})
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		return len(ops.Events.Events(obs.EventQuery{Type: obs.EventWorkerCrash})) > 0
	}, "engine crash never recorded")
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		return p.Engine().Running()
	}, "supervisor never restarted the engine loop")

	feed(t, ag, prod)
	if err := p.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	snap := p.Metrics().Snapshot()
	if got := snap.Counter("core_parsed_total"); got != nParsed {
		t.Errorf("core_parsed_total = %d, want %d after restart", got, nParsed)
	}

	_, probes := ops.Health.Check()
	var supProbe *obs.ProbeResult
	for name, pr := range probes {
		if name == "supervisor:engine:main" {
			r := pr
			supProbe = &r
		}
	}
	if supProbe == nil {
		t.Fatal("supervisor probe not registered")
	}
	if supProbe.Status != obs.Degraded {
		t.Errorf("supervisor probe = %v (%s), want degraded inside the restart window",
			supProbe.Status, supProbe.Detail)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointFailureKeepsPrevious: when the disk gives out mid-save
// (chaos ENOSPC), the previous checkpoint generation must stay
// restorable, the error must surface to the caller, and the checkpoint
// health probe must go degraded.
func TestCheckpointFailureKeepsPrevious(t *testing.T) {
	const nParsed, nUnparsed = 20, 4
	training, prod := conservationCorpus(nParsed, nUnparsed)

	// Measure how many bytes one checkpoint of this workload writes,
	// using an unlimited fault FS as a pass-through byte counter.
	meter := chaos.NewFaultFS(nil, chaos.FSConfig{}, nil)
	p1 := newRecoveryPipeline(t, t.TempDir(), false, func(cfg *Config) {
		cfg.Recovery.FS = meter
	})
	if _, _, err := p1.Train("ckptfail", training); err != nil {
		t.Fatal(err)
	}
	if err := p1.Start(); err != nil {
		t.Fatal(err)
	}
	ag, err := p1.Agent("web", 0)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, ag, prod)
	if err := p1.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := p1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	oneCheckpoint := meter.Stats().Bytes

	// Same workload against a budgeted disk: generation 1 fits, the
	// second save runs out of space partway through.
	dir := t.TempDir()
	ops := obs.New(clock.New())
	faulty := chaos.NewFaultFS(nil, chaos.FSConfig{ENOSPCAfter: oneCheckpoint + oneCheckpoint/2}, ops.Events)
	p2 := newRecoveryPipeline(t, dir, false, func(cfg *Config) {
		cfg.Recovery.FS = faulty
		cfg.Ops = ops
	})
	if _, _, err := p2.Train("ckptfail", training); err != nil {
		t.Fatal(err)
	}
	if err := p2.Start(); err != nil {
		t.Fatal(err)
	}
	ag2, err := p2.Agent("web", 0)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, ag2, prod)
	if err := p2.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	gen1, err := p2.Checkpoint()
	if err != nil {
		t.Fatalf("first checkpoint should fit the budget: %v", err)
	}
	if _, err := p2.Checkpoint(); err == nil {
		t.Fatal("second checkpoint should exhaust the budget")
	}
	_, probes := ops.Health.Check()
	if pr, ok := probes["checkpoint"]; !ok || pr.Status != obs.Degraded {
		t.Errorf("checkpoint probe = %+v, want degraded after a failed save", pr)
	}
	if err := p2.Stop(); err != nil {
		t.Fatal(err)
	}

	// Generation 1 survived the torn save and restores cleanly.
	p3 := newRecoveryPipeline(t, dir, false, nil)
	restored, err := p3.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if !restored {
		t.Fatal("previous generation lost after failed save")
	}
	snap := p3.Metrics().Snapshot()
	if got := snap.Counter("core_lines_total"); got != uint64(len(prod)) {
		t.Errorf("restored core_lines_total = %d, want %d (generation %d)", got, len(prod), gen1)
	}
}

// TestRecoveryDisabled: without a checkpoint dir the recovery surface
// stays inert — explicit errors, empty deadletter, no commit gating.
func TestRecoveryDisabled(t *testing.T) {
	p, err := New(Config{DisableHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Checkpoint(); err == nil {
		t.Error("Checkpoint should fail with recovery disabled")
	}
	if _, err := p.Restore(); err == nil {
		t.Error("Restore should fail with recovery disabled")
	}
	if got := p.DeadLetters(10); len(got) != 0 {
		t.Errorf("DeadLetters = %d messages, want 0", len(got))
	}
	if got := p.QuarantinedCount(); got != 0 {
		t.Errorf("QuarantinedCount = %d, want 0", got)
	}
}
