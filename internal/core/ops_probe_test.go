package core

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"loglens/internal/clock"
	"loglens/internal/experiments"
	"loglens/internal/heartbeat"
	"loglens/internal/obs"
	"loglens/internal/testutil"
)

// TestOpsProbesLifecycle drives the four registered health probes through
// their branches directly via Health.Check(), without going through the
// dashboard: degraded before Start, bus degraded/unhealthy as a backlog
// piles up, healthy once started and drained, heartbeat degraded once a
// tracked source goes stale.
func TestOpsProbesLifecycle(t *testing.T) {
	fc := clock.NewFake()
	ops := obs.New(fc)
	p, err := New(Config{
		Clock:           fc,
		Ops:             ops,
		BusLagDegraded:  4,
		BusLagUnhealthy: 16,
		HeartbeatStale:  2 * time.Minute,
		Heartbeat:       heartbeat.Config{Interval: time.Second, ActivityWindow: 4 * time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Ops() != ops {
		t.Fatal("Ops() does not return the configured bundle")
	}
	if p.Running() {
		t.Fatal("Running() true before Start")
	}

	// Un-started: the pipeline probe is degraded, everything else healthy.
	status, probes := ops.Health.Check()
	if status != obs.Degraded {
		t.Fatalf("un-started status = %v, probes %v", status, probes)
	}
	if pr := probes["pipeline"]; pr.Status != obs.Degraded || !strings.Contains(pr.Detail, "not started") {
		t.Fatalf("pipeline probe = %+v", pr)
	}
	for _, name := range []string{"bus", "heartbeat", "broadcast"} {
		if pr := probes[name]; pr.Status != obs.Healthy {
			t.Fatalf("%s probe = %+v, want healthy", name, pr)
		}
	}

	// Train so the logs topic and model broadcast exist; the driver holds
	// a version but no worker has pulled, which is not skew.
	base := time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)
	var train []string
	for i := 0; i < 30; i++ {
		id := "ev-" + strconv.Itoa(i)
		t0 := base.Add(time.Duration(i*10) * time.Second)
		train = append(train,
			t0.Format("2006/01/02 15:04:05.000")+" task "+id+" start prio 1",
			t0.Add(2*time.Second).Format("2006/01/02 15:04:05.000")+" task "+id+" done code 0",
		)
	}
	if _, _, err := p.Train("m1", experiments.ToLogs("tasks", train)); err != nil {
		t.Fatal(err)
	}
	if _, pr := ops.Health.Check(); pr["broadcast"].Status != obs.Healthy {
		t.Fatalf("broadcast probe after train = %+v", pr["broadcast"])
	}

	// A backlog past the degraded threshold, then past unhealthy. The
	// log manager is not running yet, so nothing drains.
	ag, err := p.Agent("tasks", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		ag.Send("junk line with no learned pattern")
	}
	if _, pr := ops.Health.Check(); pr["bus"].Status != obs.Degraded {
		t.Fatalf("bus probe at lag 8 = %+v", pr["bus"])
	}
	for i := 0; i < 16; i++ {
		ag.Send("junk line with no learned pattern")
	}
	status, probes = ops.Health.Check()
	if status != obs.Unhealthy || probes["bus"].Status != obs.Unhealthy {
		t.Fatalf("status at lag 24 = %v, bus probe %+v", status, probes["bus"])
	}

	// Start and drain the backlog; a parseable pair gets a source
	// tracked by the heartbeat controller.
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	ag.Send(base.Add(time.Hour).Format("2006/01/02 15:04:05.000") + " task ev-live start prio 1")
	ag.Send(base.Add(time.Hour+2*time.Second).Format("2006/01/02 15:04:05.000") + " task ev-live done code 0")
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		fc.Advance(20 * time.Millisecond)
		st, pr := ops.Health.Check()
		return st == obs.Healthy && strings.Contains(pr["heartbeat"].Detail, "1 tracked")
	}, "pipeline never became healthy after start")
	if !p.Running() {
		t.Fatal("Running() false while started")
	}

	// Silence past HeartbeatStale flips the heartbeat probe without any
	// sweep tick: the probe reads Staleness directly.
	fc.Advance(2*time.Minute + time.Second)
	if _, pr := ops.Health.Check(); pr["heartbeat"].Status != obs.Degraded ||
		!strings.Contains(pr["heartbeat"].Detail, "silent") {
		t.Fatalf("heartbeat probe after silence = %+v", pr["heartbeat"])
	}

	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if p.Running() {
		t.Fatal("Running() true after Stop")
	}
}

// TestOpsProbeHeartbeatDisabled: with the heartbeat controller off, its
// probe reports healthy-disabled rather than tracking nothing forever.
func TestOpsProbeHeartbeatDisabled(t *testing.T) {
	ops := obs.New(clock.NewFake())
	p, err := New(Config{Clock: clock.NewFake(), Ops: ops, DisableHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	_, probes := ops.Health.Check()
	if pr := probes["heartbeat"]; pr.Status != obs.Healthy || !strings.Contains(pr.Detail, "disabled") {
		t.Fatalf("heartbeat probe = %+v", pr)
	}
	_ = p
}
