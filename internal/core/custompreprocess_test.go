package core

import (
	"fmt"
	"testing"
	"time"

	"loglens/internal/experiments"
	"loglens/internal/modelmgr"
	"loglens/internal/preprocess"
	"loglens/internal/timestamp"
	"loglens/internal/tokenize"
)

// TestCustomPreprocessorEndToEnd configures user delimiters, a sub-token
// split rule ("123KB" -> "123 KB", the §III-A1 example), and a custom
// timestamp format, and verifies the same preprocessing drives both
// training and live detection.
func TestCustomPreprocessorEndToEnd(t *testing.T) {
	tok := tokenize.New(tokenize.WithRules(tokenize.MustRule(`([0-9]+)(KB|MB)`, "$1 $2")))
	ts := timestamp.New(timestamp.WithFormats(timestamp.MustFormat("yyyy.MM.dd-HH:mm:ss")))
	pp := preprocess.New(tok, ts)

	p, err := New(Config{
		DisableHeartbeat: true,
		Builder:          modelmgr.BuilderConfig{Preprocessor: pp},
	})
	if err != nil {
		t.Fatal(err)
	}

	base := time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)
	var train []string
	for i := 0; i < 120; i++ {
		t0 := base.Add(time.Duration(i*10) * time.Second)
		id := fmt.Sprintf("wr-%04d", i)
		train = append(train,
			fmt.Sprintf("%s write %s began", t0.Format("2006.01.02-15:04:05"), id),
			fmt.Sprintf("%s write %s flushed %dKB", t0.Add(time.Second).Format("2006.01.02-15:04:05"), id, 64+i),
		)
	}
	model, report, err := p.Train("custom", experiments.ToLogs("io", train))
	if err != nil {
		t.Fatal(err)
	}
	if report.Patterns != 2 || report.Automata != 1 {
		for _, pat := range model.Patterns.Patterns() {
			t.Logf("pattern %d: %s", pat.ID, pat)
		}
		t.Fatalf("patterns=%d automata=%d", report.Patterns, report.Automata)
	}
	// The split rule must have separated the size from the unit: the
	// flush pattern ends "... %{NUMBER} KB".
	var sawSplitUnit bool
	for _, pat := range model.Patterns.Patterns() {
		s := pat.String()
		if len(s) > 2 && s[len(s)-2:] == "KB" && !pat.HasAnyData() {
			sawSplitUnit = true
		}
	}
	if !sawSplitUnit {
		t.Error("split rule not applied during training")
	}

	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	ag, _ := p.Agent("io", 0)
	tt := base.Add(time.Hour)
	// A normal event in the custom format must parse and close cleanly
	// at detection time too.
	ag.Send(fmt.Sprintf("%s write wr-9000 began", tt.Format("2006.01.02-15:04:05")))
	ag.Send(fmt.Sprintf("%s write wr-9000 flushed 128KB", tt.Add(time.Second).Format("2006.01.02-15:04:05")))
	if err := p.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if p.UnparsedCount() != 0 {
		t.Errorf("unparsed = %d: detection-side preprocessing diverged from training", p.UnparsedCount())
	}
	if p.AnomalyCount() != 0 {
		t.Errorf("anomalies = %d", p.AnomalyCount())
	}
}
