package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"loglens/internal/experiments"
	"loglens/internal/modelmgr"
	"loglens/internal/testutil"
)

// TestLifecycleRobustness exercises the awkward corners of pipeline
// startup and shutdown.
func TestLifecycleRobustness(t *testing.T) {
	p, err := New(Config{DisableHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	// Stop before Start is a no-op.
	if err := p.Stop(); err != nil {
		t.Fatalf("stop before start: %v", err)
	}
	if _, _, err := p.Train("m", experiments.ToLogs("s", []string{"alpha 1", "alpha 2", "alpha 3"})); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// Double Start fails cleanly.
	if err := p.Start(); err == nil {
		t.Fatal("double start must fail")
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	// Double Stop is a no-op.
	if err := p.Stop(); err != nil {
		t.Fatalf("double stop: %v", err)
	}
}

// TestStopWithInflightTraffic: shutting down while agents send must not
// deadlock or panic; logs sent before Stop and drained are all processed.
func TestStopWithInflightTraffic(t *testing.T) {
	p, err := New(Config{DisableHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Train("m", experiments.ToLogs("s", []string{"tick 1", "tick 2", "tick 3"})); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	ag, _ := p.Agent("s", 0)

	// A concurrent sender pushes a fixed burst — no sleeps pacing it;
	// the drain below must absorb everything in flight.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			ag.Send("tick 9")
		}
	}()
	wg.Wait()
	if err := p.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if p.UnparsedCount() != 0 {
		t.Errorf("unparsed = %d", p.UnparsedCount())
	}
	// Everything the log manager forwarded was processed.
	m := p.Engine().Metrics()
	if m.Records == 0 {
		t.Error("no records processed")
	}
}

// TestDrainTimeout: a drain deadline that cannot be met reports an error
// instead of hanging.
func TestDrainTimeout(t *testing.T) {
	p, err := New(Config{DisableHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Train("m", experiments.ToLogs("s", []string{"x 1", "x 2"})); err != nil {
		t.Fatal(err)
	}
	// Never started: the bus is never pumped, so pending logs cannot
	// drain.
	ag, agErr := p.Agent("s", 0)
	if agErr != nil {
		t.Fatal(agErr)
	}
	ag.Send("x 3")
	if err := p.Drain(50 * time.Millisecond); err == nil {
		t.Fatal("drain must time out when nothing consumes")
	}
}

// TestAccessorsAndAggregates covers the operational read APIs on a live
// pipeline: bus/store access, per-pattern counts, detector stats.
func TestAccessorsAndAggregates(t *testing.T) {
	p, err := New(Config{DisableHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Bus() == nil || p.Store() == nil {
		t.Fatal("bus/store accessors")
	}
	base := time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)
	var train []string
	for i := 0; i < 80; i++ {
		t0 := base.Add(time.Duration(i*10) * time.Second)
		id := fmt.Sprintf("tk-%04d", i)
		train = append(train,
			fmt.Sprintf("%s task %s start prio %d", t0.Format("2006/01/02 15:04:05.000"), id, i%5),
			fmt.Sprintf("%s task %s done code %d", t0.Add(2*time.Second).Format("2006/01/02 15:04:05.000"), id, i%3),
		)
	}
	model, _, err := p.Train("m", experiments.ToLogs("s", train))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	ag, _ := p.Agent("s", 0)
	tt := base.Add(time.Hour)
	ag.Send(fmt.Sprintf("%s task ok-1 start prio 1", tt.Format("2006/01/02 15:04:05.000")))
	ag.Send(fmt.Sprintf("%s task ok-1 done code 0", tt.Add(2*time.Second).Format("2006/01/02 15:04:05.000")))
	ag.Send(fmt.Sprintf("%s task open-1 start prio 1", tt.Add(time.Minute).Format("2006/01/02 15:04:05.000")))
	if err := p.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	counts := p.PatternCounts()
	total := uint64(0)
	for _, n := range counts {
		total += n
	}
	if total != 3 {
		t.Errorf("pattern counts total = %d, want 3: %v", total, counts)
	}
	stats := p.DetectorStats()
	if stats.LogsProcessed != 3 || stats.EventsClosed != 1 {
		t.Errorf("detector stats = %+v", stats)
	}
	if got := p.OpenStates(); got != 1 {
		t.Errorf("open states = %d, want 1 (the open-1 event)", got)
	}

	// applyInstruction's delete path, routed through the controller.
	if err := p.Controller().Announce(modelmgr.Instruction{Op: modelmgr.OpDelete, ModelID: model.ID}); err != nil {
		t.Fatal(err)
	}
	testutil.WaitUntil(t, 5*time.Second, func() bool { return p.Model() == nil },
		"delete instruction never applied")
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
}
