package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"loglens/internal/obs"
	"loglens/internal/recovery"
)

// persistentDirs returns (checkpointDir, dataDir) under one test temp
// root — the layout cmd/loglens runs with -checkpoint-dir and -data-dir.
func persistentDirs(t *testing.T) (string, string) {
	t.Helper()
	root := t.TempDir()
	return filepath.Join(root, "ckpt"), filepath.Join(root, "data")
}

// TestPersistentStoreKillRestart is the segment engine's end-to-end
// proof: a pipeline running on the persistent store is killed mid-stream
// and restored from its checkpoint — which records only the store's
// manifest generation, no copied snapshot — and the replayed run must
// land on the exact end state of the uninterrupted in-memory golden run:
// same conservation counters, same stored-anomaly multiset.
func TestPersistentStoreKillRestart(t *testing.T) {
	const nParsed, nUnparsed = 40, 8
	_, prod := conservationCorpus(nParsed, nUnparsed)
	n := uint64(len(prod))

	// Golden run on the in-memory engine: the persistent run must be
	// indistinguishable from it, which also pins the query paths.
	golden := goldenRun(t, false, prod)
	assertConservation(t, golden, n)

	ckptDir, dataDir := persistentDirs(t)
	withStorage := func(cfg *Config) {
		cfg.Storage = StorageConfig{Dir: dataDir}
	}
	training, _ := conservationCorpus(0, 0)

	p1 := newRecoveryPipeline(t, ckptDir, false, withStorage)
	if !p1.Store().Persistent() {
		t.Fatal("pipeline store is not persistent")
	}
	if _, _, err := p1.Train("recovery", training); err != nil {
		t.Fatal(err)
	}
	if err := p1.Start(); err != nil {
		t.Fatal(err)
	}
	ag1, err := p1.Agent("web", 0)
	if err != nil {
		t.Fatal(err)
	}
	const ckptAt, killAt = 20, 35
	feed(t, ag1, prod[:ckptAt])
	if err := p1.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	gen, err := p1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if gen == 0 {
		t.Fatal("checkpoint generation 0")
	}
	feed(t, ag1, prod[ckptAt:killAt])
	p1.Kill()

	// The checkpoint must be incremental: it records the store
	// generation and copies no store snapshot directory.
	cp, ok, err := recovery.NewManager(nil, ckptDir).Load()
	if err != nil || !ok {
		t.Fatalf("load checkpoint: %v, %v", err, ok)
	}
	if cp.StoreGen == 0 {
		t.Fatal("persistent-store checkpoint did not record a store generation")
	}
	if cp.StoreDir != "" {
		t.Fatalf("persistent-store checkpoint copied a snapshot dir %q", cp.StoreDir)
	}
	entries, err := os.ReadDir(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "store-") {
			t.Fatalf("checkpoint dir holds a store snapshot copy %q", e.Name())
		}
	}
	// The generation it references is backed by immutable segment files.
	segs, err := os.ReadDir(filepath.Join(dataDir, "seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files back the checkpoint: %v (%d entries)", err, len(segs))
	}

	p2 := newRecoveryPipeline(t, ckptDir, false, withStorage)
	restored, err := p2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if !restored {
		t.Fatal("Restore found no checkpoint")
	}
	if m := p2.Model(); m == nil || m.ID != "recovery" {
		t.Fatalf("restored model = %v (model storage not restored from segments)", m)
	}
	if err := p2.Start(); err != nil {
		t.Fatal(err)
	}
	ag2, err := p2.Agent("web", 0)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, ag2, prod)
	if err := p2.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	res := collectResult(p2)
	if err := p2.Stop(); err != nil {
		t.Fatal(err)
	}
	assertConservation(t, res, n)
	assertSameResult(t, res, golden)

	// A clean stop seals everything: a third process sees the full end
	// state straight from the segments.
	p3 := newRecoveryPipeline(t, ckptDir, false, withStorage)
	got := anomalySignature(p3)
	if len(got) != len(golden.sig) {
		t.Fatalf("reopened store holds %d anomalies, want %d", len(got), len(golden.sig))
	}
	for i := range got {
		if got[i] != golden.sig[i] {
			t.Fatalf("reopened anomaly %d = %q, golden %q", i, got[i], golden.sig[i])
		}
	}
	if err := p3.Store().Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStorageProbe wires a persistent pipeline into the ops plane: the
// storage probe registers and reports healthy, and Stats carries the
// fields /api/storage serves (the HTTP side lives in internal/dashboard).
func TestStorageProbe(t *testing.T) {
	_, dataDir := persistentDirs(t)
	ops := obs.New(nil)
	p, err := New(Config{
		DisableHeartbeat: true,
		Ops:              ops,
		Storage:          StorageConfig{Dir: dataDir},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Store().Close()
	p.Store().Index("anomalies").Put("a1", map[string]any{"type": "x"})
	if err := p.Store().Flush(); err != nil {
		t.Fatal(err)
	}

	_, probes := ops.Health.Check()
	res, ok := probes["storage"]
	if !ok {
		t.Fatalf("no storage probe registered (probes: %v)", probes)
	}
	if res.Status != obs.Healthy {
		t.Fatalf("storage probe = %+v, want healthy", res)
	}
	if !strings.Contains(res.Detail, "generation") {
		t.Fatalf("storage probe detail %q lacks generation", res.Detail)
	}

	st := p.Store().Stats()
	if !st.Persistent || st.Generation < 2 || st.Flushes == 0 {
		t.Fatalf("Stats() = %+v, want persistent with a committed flush", st)
	}
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"persistent":true`) {
		t.Fatalf("stats JSON %s lacks persistent flag", data)
	}
}
