package core

import (
	"fmt"
	"testing"
	"time"

	"loglens/internal/anomaly"
	"loglens/internal/experiments"
	"loglens/internal/modelmgr"
)

// TestVolumeDetectorEndToEnd runs the third analytics application through
// the full pipeline: a model with a learned rate profile flags a log-storm
// window as a volume spike and a silent stretch (surfaced by heartbeats)
// as a volume drop.
func TestVolumeDetectorEndToEnd(t *testing.T) {
	p, err := New(Config{
		DisableHeartbeat: true, // heartbeats injected deterministically
		Builder:          modelmgr.BuilderConfig{VolumeWindow: 10 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Training: a steady 20 health logs per 10s window for 50 windows.
	var train []string
	for w := 0; w < 50; w++ {
		for i := 0; i < 20; i++ {
			ts := msBase.Add(time.Duration(w)*10*time.Second + time.Duration(i)*100*time.Millisecond)
			train = append(train, fmt.Sprintf("%s worker heartbeat mem %d kb", msStamp(ts), 1000+w*20+i))
		}
	}
	model, _, err := p.Train("vol", experiments.ToLogs("svc", train))
	if err != nil {
		t.Fatal(err)
	}
	if model.Volume == nil || len(model.Volume.Stats) == 0 {
		t.Fatal("volume profile not learned")
	}

	var spikes, drops int
	p.OnAnomaly(func(r anomaly.Record) {
		switch r.Type {
		case anomaly.VolumeSpike:
			spikes++
		case anomaly.VolumeDrop:
			drops++
		default:
			t.Errorf("unexpected anomaly %v: %s", r.Type, r.Reason)
		}
	})
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	ag, _ := p.Agent("svc", 0)

	day := msBase.Add(24 * time.Hour)
	send := func(w, count int) {
		for i := 0; i < count; i++ {
			ts := day.Add(time.Duration(w)*10*time.Second + time.Duration(i)*10*time.Millisecond)
			ag.Send(fmt.Sprintf("%s worker heartbeat mem %d kb", msStamp(ts), 5000+i))
		}
	}
	send(0, 20)  // normal
	send(1, 300) // storm
	send(2, 20)  // normal
	// windows 3,4: silence; a heartbeat at window 5 surfaces them.
	p.InjectHeartbeat("svc", day.Add(50*time.Second))
	if err := p.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}

	if spikes != 1 {
		t.Errorf("spikes = %d, want 1", spikes)
	}
	if drops < 2 {
		t.Errorf("drops = %d, want the silent windows flagged", drops)
	}
}
