package core

import (
	"fmt"
	"testing"
	"time"

	"loglens/internal/experiments"
	"loglens/internal/modelmgr"
	"loglens/internal/testutil"
)

// TestDataDriftRelearning exercises §II-A "Handling data drift": the
// target system evolves and emits a new log format; the old model flags it
// as unparsed anomalies; a periodic rebuild from the archived logs learns
// the new format; after the zero-downtime update the noise stops.
func TestDataDriftRelearning(t *testing.T) {
	p, err := New(Config{DisableHeartbeat: true, ArchiveLogs: true})
	if err != nil {
		t.Fatal(err)
	}

	// Era 1: the service logs only "ping" events.
	var era1 []string
	for i := 0; i < 150; i++ {
		t0 := msBase.Add(time.Duration(i*10) * time.Second)
		id := fmt.Sprintf("pg-%04d", i)
		era1 = append(era1,
			fmt.Sprintf("%s ping %s sent ttl %d", msStamp(t0), id, 32+i%8),
			fmt.Sprintf("%s ping %s pong rtt %d ms", msStamp(t0.Add(time.Second)), id, 1+i%9),
		)
	}
	if _, _, err := p.Train("era1", experiments.ToLogs("svc", era1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	ag, _ := p.Agent("svc", 0)

	// Era 2: a software update adds a new "trace" log format. Under the
	// era-1 model every trace log is an unparsed anomaly.
	tt := msBase.Add(time.Hour)
	var era2 []string
	for i := 0; i < 60; i++ {
		t0 := tt.Add(time.Duration(i*5) * time.Second)
		id := fmt.Sprintf("pg-9%03d", i)
		era2 = append(era2,
			fmt.Sprintf("%s ping %s sent ttl 33", msStamp(t0), id),
			fmt.Sprintf("%s ping %s pong rtt 4 ms", msStamp(t0.Add(time.Second)), id),
			fmt.Sprintf("%s trace span sp-%04d duration %d us", msStamp(t0.Add(2*time.Second)), i, 100+i),
		)
	}
	for _, line := range era2 {
		ag.Send(line)
	}
	if err := p.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	driftNoise := p.UnparsedCount()
	if driftNoise != 60 {
		t.Fatalf("drift noise = %d unparsed, want 60", driftNoise)
	}

	// Relearn from the archived logs (the log manager stored both
	// eras under the source's index) and hot-swap the model.
	m2, report, err := p.Manager().Rebuild("era2", "svc", time.Time{}.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if report.Patterns < 3 {
		t.Fatalf("relearned model has %d patterns, want the trace pattern included", report.Patterns)
	}
	if err := p.Controller().Announce(modelmgr.Instruction{Op: modelmgr.OpUpdate, ModelID: m2.ID}); err != nil {
		t.Fatal(err)
	}
	testutil.WaitUntil(t, 5*time.Second, func() bool {
		m := p.Model()
		return m != nil && m.ID == "era2"
	}, "relearned model never installed")

	// Era 2 traffic is clean under the relearned model.
	tt = tt.Add(2 * time.Hour)
	for i := 0; i < 20; i++ {
		t0 := tt.Add(time.Duration(i*5) * time.Second)
		id := fmt.Sprintf("pg-8%03d", i)
		ag.Send(fmt.Sprintf("%s ping %s sent ttl 33", msStamp(t0), id))
		ag.Send(fmt.Sprintf("%s ping %s pong rtt 4 ms", msStamp(t0.Add(time.Second)), id))
		ag.Send(fmt.Sprintf("%s trace span sp-8%03d duration 120 us", msStamp(t0.Add(2*time.Second)), i))
	}
	if err := p.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := p.UnparsedCount(); got != driftNoise {
		t.Fatalf("unparsed grew from %d to %d after relearning: drift not absorbed", driftNoise, got)
	}
}

// TestAcceptUnparsedFeedbackLoop: flagged-but-benign logs stop being
// anomalies after the operator accepts them (§VIII), with the update
// applied live.
func TestAcceptUnparsedFeedbackLoop(t *testing.T) {
	p, err := New(Config{DisableHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	var train []string
	for i := 0; i < 60; i++ {
		train = append(train, fmt.Sprintf("svc ready check %d ok", i))
	}
	if _, _, err := p.Train("m", experiments.ToLogs("s", train)); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	ag, _ := p.Agent("s", 0)

	benign := []string{
		"cache warm segment 1 loaded",
		"cache warm segment 2 loaded",
		"cache warm segment 3 loaded",
	}
	for _, l := range benign {
		ag.Send(l)
	}
	if err := p.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if p.UnparsedCount() != 3 {
		t.Fatalf("unparsed = %d, want 3 before feedback", p.UnparsedCount())
	}

	added, next, err := p.AcceptUnparsed(benign)
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 {
		t.Fatalf("added = %d", added)
	}
	// Wait for the rebroadcast to land.
	testutil.WaitUntil(t, 5*time.Second, func() bool {
		m := p.Model()
		return m != nil && m.ID == next.ID
	}, "feedback model never installed")

	ag.Send("cache warm segment 4 loaded")
	if err := p.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if p.UnparsedCount() != 3 {
		t.Fatalf("unparsed = %d: the accepted shape is still flagged", p.UnparsedCount())
	}
	// The new model is in the model storage for audit.
	if _, err := p.Manager().Load(next.ID); err != nil {
		t.Errorf("feedback model not saved: %v", err)
	}
}
