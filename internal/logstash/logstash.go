// Package logstash re-implements the log-parsing strategy of the Logstash
// grok filter, the baseline LogLens is compared against in Table IV. Each
// GROK pattern compiles to an anchored regular expression with named
// capture groups; an incoming log is matched against the pattern list
// linearly until one regex accepts it. Cost is therefore O(m) regex
// executions per log — with the large automatically-discovered pattern
// sets (thousands of patterns), exactly the behaviour that made Logstash
// unable to finish the D4 and D6 datasets in the paper.
package logstash

import (
	"errors"
	"fmt"
	"regexp"
	"strings"

	"loglens/internal/grok"
	"loglens/internal/logtypes"
)

// ErrNoMatch reports that no pattern's regex accepted the log.
var ErrNoMatch = errors.New("logstash: log matches no pattern")

// Pipeline is a Logstash-style grok parsing pipeline.
type Pipeline struct {
	patterns []compiled
	stats    Stats
}

type compiled struct {
	id     int
	re     *regexp.Regexp
	fields []string // capture-group field names, in group order
}

// Stats counts baseline work.
type Stats struct {
	// Parsed and Unmatched count logs by outcome.
	Parsed, Unmatched uint64
	// RegexTries counts individual regex executions, the baseline's
	// unit of work.
	RegexTries uint64
}

// New compiles every pattern in the set. Compilation cost is paid once at
// pipeline start, as in Logstash.
func New(set *grok.Set) (*Pipeline, error) {
	pl := &Pipeline{}
	for _, p := range set.Patterns() {
		re, fields, err := compilePattern(p)
		if err != nil {
			return nil, err
		}
		pl.patterns = append(pl.patterns, compiled{id: p.ID, re: re, fields: fields})
	}
	return pl, nil
}

// compilePattern translates a GROK pattern into an anchored regexp.
// Literals are quoted; fields become capture groups of their datatype's
// defining expression; token boundaries are single spaces (the pipeline
// normalizes whitespace before matching, as the grok filter does for its
// %{...} token boundaries).
func compilePattern(p *grok.Pattern) (*regexp.Regexp, []string, error) {
	var b strings.Builder
	b.WriteString("^")
	var fields []string
	for i, t := range p.Tokens {
		if i > 0 {
			b.WriteString(" ")
		}
		if t.IsField {
			fields = append(fields, t.Name)
			b.WriteString("(")
			b.WriteString(t.Type.Regexp())
			b.WriteString(")")
			continue
		}
		b.WriteString(regexp.QuoteMeta(t.Literal))
	}
	b.WriteString("$")
	re, err := regexp.Compile(b.String())
	if err != nil {
		return nil, nil, fmt.Errorf("logstash: compile pattern %d: %w", p.ID, err)
	}
	return re, fields, nil
}

// Parse matches the log against every pattern in order, returning the
// first match's extracted fields.
func (pl *Pipeline) Parse(l logtypes.Log) (*logtypes.ParsedLog, error) {
	line := normalizeSpaces(l.Raw)
	for _, c := range pl.patterns {
		pl.stats.RegexTries++
		m := c.re.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		fields := make([]logtypes.Field, 0, len(c.fields))
		for i, name := range c.fields {
			fields = append(fields, logtypes.Field{Name: name, Value: m[i+1]})
		}
		pl.stats.Parsed++
		return &logtypes.ParsedLog{Log: l, PatternID: c.id, Fields: fields}, nil
	}
	pl.stats.Unmatched++
	return nil, ErrNoMatch
}

// Stats returns a snapshot of the work counters.
func (pl *Pipeline) Stats() Stats { return pl.stats }

// NumPatterns returns the number of compiled patterns.
func (pl *Pipeline) NumPatterns() int { return len(pl.patterns) }

// normalizeSpaces collapses whitespace runs to single spaces and trims the
// ends, aligning raw text with the single-space token boundaries of the
// compiled expressions.
func normalizeSpaces(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	inSpace := false
	started := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f' {
			inSpace = true
			continue
		}
		if inSpace && started {
			b.WriteByte(' ')
		}
		inSpace = false
		started = true
		b.WriteByte(c)
	}
	return b.String()
}
