package logstash

import (
	"strings"
	"testing"

	"loglens/internal/logtypes"
)

func TestParseConfigSingle(t *testing.T) {
	cfg := `
# production web pipeline
input { beats { port => 5044 } }
filter {
  grok {
    match => { "message" => "%{WORD:action} DB %{IP:server} user %{NOTSPACE:user}" }
  }
}
output { elasticsearch { hosts => ["localhost:9200"] } }
`
	set, err := ParseConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 1 {
		t.Fatalf("patterns = %d", set.Len())
	}
	pipe, err := New(set)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := pipe.Parse(logtypes.Log{Raw: "Connect DB 127.0.0.1 user abc123"})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := pl.FieldValue("user"); v != "abc123" {
		t.Errorf("user = %q", v)
	}
}

func TestParseConfigPatternList(t *testing.T) {
	cfg := `
filter {
  grok {
    match => { "message" => ["login %{NOTSPACE:u}", "logout %{NOTSPACE:u}"] }
  }
  grok {
    match => { "message" => "error %{NUMBER:code}" }
  }
}
`
	set, err := ParseConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 3 {
		t.Fatalf("patterns = %d, want 3", set.Len())
	}
	// File order is preserved (first-match-wins semantics).
	p1, _ := set.Get(1)
	if !strings.HasPrefix(p1.String(), "login") {
		t.Errorf("pattern 1 = %q", p1.String())
	}
}

func TestParseConfigErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  string
	}{
		{"no patterns", `filter { mutate { } }`},
		{"bad grok type", `filter { grok { match => { "message" => "%{BOGUS:x}" } } }`},
		{"unterminated string", `filter { grok { match => { "message" => "x } }`},
		{"missing brace", `filter { grok { match => "p" } }`},
		{"unterminated list", `filter { grok { match => { "message" => ["a" } }`},
	} {
		if _, err := ParseConfig(tc.cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestParseConfigCommentsAndEscapes(t *testing.T) {
	cfg := `
filter {
  grok {
    # quoted-quote literal token, then a field
    match => { "message" => "say \"hi\" %{WORD:w}" }
  }
}
`
	set, err := ParseConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pipe, _ := New(set)
	pl, err := pipe.Parse(logtypes.Log{Raw: `say "hi" world`})
	if err != nil {
		t.Fatalf("escaped pattern did not match: %v", err)
	}
	if v, _ := pl.FieldValue("w"); v != "world" {
		t.Errorf("w = %q", v)
	}
}

func TestMatchWordElsewhereIgnored(t *testing.T) {
	// "match" appearing as a value, not a directive.
	cfg := `
filter {
  mutate { add_field => { "note" => "match nothing" } }
  grok { match => { "message" => "ok %{NUMBER:n}" } }
}
`
	set, err := ParseConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 1 {
		t.Fatalf("patterns = %d", set.Len())
	}
}
