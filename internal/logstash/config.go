package logstash

import (
	"fmt"
	"strconv"
	"strings"

	"loglens/internal/grok"
)

// ParseConfig reads the grok match patterns out of a Logstash pipeline
// configuration — the subset of logstash.conf syntax that defines parsing
// behaviour:
//
//	filter {
//	  grok {
//	    match => { "message" => "%{WORD:action} DB %{IP:server}" }
//	    match => { "message" => ["%{WORD:a} one", "%{WORD:b} two"] }
//	  }
//	}
//
// Returned patterns are numbered in file order, matching Logstash's
// first-match-wins semantics. Comments (#) and unrelated stanzas are
// ignored. This lets the Table IV baseline run a real deployment's
// pipeline definition.
func ParseConfig(text string) (*grok.Set, error) {
	set := grok.NewSet()
	toks, err := lexConfig(text)
	if err != nil {
		return nil, err
	}
	i := 0
	for i < len(toks) {
		if toks[i].kind == tokWord && toks[i].text == "match" {
			var patterns []string
			i, patterns, err = parseMatch(toks, i)
			if err != nil {
				return nil, err
			}
			for _, pt := range patterns {
				p, err := grok.ParsePattern(0, pt)
				if err != nil {
					return nil, fmt.Errorf("logstash: config: %w", err)
				}
				set.Add(p)
			}
			continue
		}
		i++
	}
	if set.Len() == 0 {
		return nil, fmt.Errorf("logstash: config contains no grok match patterns")
	}
	return set, nil
}

type tokKind int

const (
	tokWord tokKind = iota + 1
	tokString
	tokPunct
)

type token struct {
	kind tokKind
	text string
	line int
}

// lexConfig tokenizes the config: words, double-quoted strings (with
// backslash escapes), and punctuation. '#' starts a comment to end of
// line.
func lexConfig(text string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(text) {
		c := text[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(text) && text[i] != '\n' {
				i++
			}
		case c == '"':
			j := i + 1
			var b strings.Builder
			for j < len(text) && text[j] != '"' {
				if text[j] == '\\' && j+1 < len(text) {
					esc, err := unescape(text[j+1])
					if err != nil {
						return nil, fmt.Errorf("logstash: config line %d: %w", line, err)
					}
					b.WriteByte(esc)
					j += 2
					continue
				}
				if text[j] == '\n' {
					line++
				}
				b.WriteByte(text[j])
				j++
			}
			if j >= len(text) {
				return nil, fmt.Errorf("logstash: config line %d: unterminated string", line)
			}
			toks = append(toks, token{kind: tokString, text: b.String(), line: line})
			i = j + 1
		case strings.ContainsRune("{}[]=>,", rune(c)):
			// '=>' lexes as two punct tokens.
			toks = append(toks, token{kind: tokPunct, text: string(c), line: line})
			i++
		default:
			j := i
			for j < len(text) && !strings.ContainsRune(" \t\r\n#\"{}[]=>,", rune(text[j])) {
				j++
			}
			toks = append(toks, token{kind: tokWord, text: text[i:j], line: line})
			i = j
		}
	}
	return toks, nil
}

func unescape(c byte) (byte, error) {
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case '\\', '"':
		return c, nil
	default:
		if c >= ' ' && c < 127 {
			return c, nil
		}
		return 0, fmt.Errorf("bad escape %s", strconv.QuoteRune(rune(c)))
	}
}

// parseMatch consumes: match => { "field" => "pattern" } or
// match => { "field" => ["p1", "p2"] }, returning the next index and the
// pattern strings.
func parseMatch(toks []token, i int) (int, []string, error) {
	at := func(j int, kind tokKind, text string) bool {
		return j < len(toks) && toks[j].kind == kind && toks[j].text == text
	}
	line := toks[i].line
	j := i + 1
	// => is two punct tokens '=' '>'.
	if !at(j, tokPunct, "=") || !at(j+1, tokPunct, ">") {
		return i + 1, nil, nil // "match" used as a plain word elsewhere
	}
	j += 2
	if !at(j, tokPunct, "{") {
		return 0, nil, fmt.Errorf("logstash: config line %d: match => expects '{'", line)
	}
	j++
	if j >= len(toks) || toks[j].kind != tokString {
		return 0, nil, fmt.Errorf("logstash: config line %d: match field must be a string", line)
	}
	j++ // the field name (usually "message")
	if !at(j, tokPunct, "=") || !at(j+1, tokPunct, ">") {
		return 0, nil, fmt.Errorf("logstash: config line %d: match field expects '=>'", line)
	}
	j += 2

	var patterns []string
	if at(j, tokPunct, "[") {
		j++
		for !at(j, tokPunct, "]") {
			if j >= len(toks) {
				return 0, nil, fmt.Errorf("logstash: config line %d: unterminated pattern list", line)
			}
			if toks[j].kind == tokString {
				patterns = append(patterns, toks[j].text)
			} else if !at(j, tokPunct, ",") {
				return 0, nil, fmt.Errorf("logstash: config line %d: unexpected %q in pattern list", line, toks[j].text)
			}
			j++
		}
		j++
	} else if j < len(toks) && toks[j].kind == tokString {
		patterns = append(patterns, toks[j].text)
		j++
	} else {
		return 0, nil, fmt.Errorf("logstash: config line %d: match expects a pattern string or list", line)
	}
	if !at(j, tokPunct, "}") {
		return 0, nil, fmt.Errorf("logstash: config line %d: match block not closed", line)
	}
	return j + 1, patterns, nil
}
