package logstash

import (
	"errors"
	"fmt"
	"testing"

	"loglens/internal/grok"
	"loglens/internal/logtypes"
	"loglens/internal/parser"
)

func mustSet(t *testing.T, texts ...string) *grok.Set {
	t.Helper()
	set := grok.NewSet()
	for _, text := range texts {
		p, err := grok.ParsePattern(0, text)
		if err != nil {
			t.Fatal(err)
		}
		set.Add(p)
	}
	return set
}

func TestParseBasic(t *testing.T) {
	set := mustSet(t,
		"%{WORD:Action} DB %{IP:Server} user %{NOTSPACE:UserName}",
		"cache evicted %{NUMBER:n} entries",
	)
	pipe, err := New(set)
	if err != nil {
		t.Fatal(err)
	}
	if pipe.NumPatterns() != 2 {
		t.Fatalf("patterns = %d", pipe.NumPatterns())
	}
	pl, err := pipe.Parse(logtypes.Log{Raw: "Connect DB 127.0.0.1 user abc123"})
	if err != nil {
		t.Fatal(err)
	}
	if pl.PatternID != 1 {
		t.Errorf("pattern = %d", pl.PatternID)
	}
	if v, _ := pl.FieldValue("UserName"); v != "abc123" {
		t.Errorf("UserName = %q", v)
	}
	pl, err = pipe.Parse(logtypes.Log{Raw: "cache evicted 42 entries"})
	if err != nil || pl.PatternID != 2 {
		t.Fatalf("second pattern: %v %v", pl, err)
	}
	if _, err := pipe.Parse(logtypes.Log{Raw: "no match here at all"}); !errors.Is(err, ErrNoMatch) {
		t.Errorf("err = %v", err)
	}
	s := pipe.Stats()
	if s.Parsed != 2 || s.Unmatched != 1 {
		t.Errorf("stats = %+v", s)
	}
	// Linear scan: first log tried 1 regex, second 2, third all 2.
	if s.RegexTries != 1+2+2 {
		t.Errorf("regex tries = %d", s.RegexTries)
	}
}

func TestWhitespaceNormalization(t *testing.T) {
	pipe, err := New(mustSet(t, "a %{NUMBER:n} b"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Parse(logtypes.Log{Raw: "  a   7\tb "}); err != nil {
		t.Errorf("normalized whitespace must match: %v", err)
	}
}

func TestAnchoring(t *testing.T) {
	pipe, err := New(mustSet(t, "a %{NUMBER:n}"))
	if err != nil {
		t.Fatal(err)
	}
	for _, raw := range []string{"a 7 trailing", "leading a 7"} {
		if _, err := pipe.Parse(logtypes.Log{Raw: raw}); err == nil {
			t.Errorf("%q must not match the anchored pattern", raw)
		}
	}
}

func TestLiteralQuoting(t *testing.T) {
	// Regex metacharacters in literals must be escaped.
	pipe, err := New(mustSet(t, "q(x)* %{NUMBER:n}"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Parse(logtypes.Log{Raw: "q(x)* 5"}); err != nil {
		t.Errorf("quoted literal failed: %v", err)
	}
	if _, err := pipe.Parse(logtypes.Log{Raw: "qxxx 5"}); err == nil {
		t.Error("metacharacters leaked into the regex")
	}
}

func TestAnyDataCompiles(t *testing.T) {
	pipe, err := New(mustSet(t, "start %{ANYDATA:rest} end"))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := pipe.Parse(logtypes.Log{Raw: "start a b c end"})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := pl.FieldValue("rest"); v != "a b c" {
		t.Errorf("rest = %q", v)
	}
}

// TestAgreesWithLogLensParser differentially compares the baseline with
// the signature-indexed parser over a mixed corpus: both must accept the
// same logs with the same pattern.
func TestAgreesWithLogLensParser(t *testing.T) {
	set := mustSet(t,
		"%{DATETIME:t} %{IP:ip} job %{NOTSPACE:id} submitted queue %{NOTSPACE:q}",
		"%{DATETIME:t} %{IP:ip} job %{NOTSPACE:id} completed rc %{NUMBER:rc}",
		"sys health ok mem %{NUMBER:m} kb",
	)
	pipe, err := New(set)
	if err != nil {
		t.Fatal(err)
	}
	ll := parser.New(set, nil)
	lines := []string{
		"2016/02/23 09:00:31.000 10.0.0.1 job jb-1 submitted queue q2",
		"2016/02/23 09:00:35.000 10.0.0.1 job jb-1 completed rc 0",
		"sys health ok mem 4096 kb",
		"sys health ok mem xyz kb",
		"something else entirely",
	}
	for i, line := range lines {
		a, errA := pipe.Parse(logtypes.Log{Raw: line, Seq: uint64(i)})
		b, errB := ll.Parse(logtypes.Log{Raw: line, Seq: uint64(i)})
		if (errA == nil) != (errB == nil) {
			t.Errorf("%q: logstash err=%v loglens err=%v", line, errA, errB)
			continue
		}
		if errA == nil && a.PatternID != b.PatternID {
			t.Errorf("%q: logstash pattern %d, loglens pattern %d", line, a.PatternID, b.PatternID)
		}
	}
}

func TestLinearCostGrowsWithPatterns(t *testing.T) {
	// The Table IV effect in miniature: per-log regex tries scale with
	// the pattern count for logs matching the last pattern.
	var texts []string
	for i := 0; i < 50; i++ {
		texts = append(texts, fmt.Sprintf("unique%c%c token %%{NUMBER:n}", 'a'+i%26, 'a'+(i/26)%26))
	}
	pipe, err := New(mustSet(t, texts...))
	if err != nil {
		t.Fatal(err)
	}
	// A log matching the final pattern (i=49: 49%26='x', 49/26='b')
	// pays for all 50 regexes.
	last := "uniquexb token 9"
	if _, err := pipe.Parse(logtypes.Log{Raw: last}); err != nil {
		t.Fatalf("last pattern log did not parse: %v", err)
	}
	if got := pipe.Stats().RegexTries; got != 50 {
		t.Errorf("regex tries = %d, want 50 (linear scan)", got)
	}
}
