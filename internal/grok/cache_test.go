package grok

import (
	"reflect"
	"testing"

	"loglens/internal/datatype"
	"loglens/internal/logtypes"
)

// uncached recomputes derived state from Tokens alone, the ground truth
// the caches must agree with.
func uncached(p *Pattern) (sig []datatype.Type, hasAny bool, gen int) {
	sig = make([]datatype.Type, len(p.Tokens))
	for i, t := range p.Tokens {
		sig[i] = t.SignatureType()
		if t.IsField {
			gen += t.Type.Generality()
			if t.Type == datatype.AnyData {
				hasAny = true
			}
		}
	}
	return sig, hasAny, gen
}

func checkCaches(t *testing.T, label string, p *Pattern) {
	t.Helper()
	sig, hasAny, gen := uncached(p)
	if got := p.SignatureTypes(); !reflect.DeepEqual(got, sig) {
		t.Errorf("%s: SignatureTypes = %v, want %v", label, got, sig)
	}
	if got := p.HasAnyData(); got != hasAny {
		t.Errorf("%s: HasAnyData = %v, want %v", label, got, hasAny)
	}
	if got := p.Generality(); got != gen {
		t.Errorf("%s: Generality = %d, want %d", label, got, gen)
	}
}

// TestCachesTrackEdits: every signature-affecting mutation keeps the
// precomputed caches consistent with a from-scratch recomputation.
func TestCachesTrackEdits(t *testing.T) {
	p, err := ParsePattern(1, "%{DATETIME:ts} %{IP:addr} login user1 rc %{NUMBER:rc}")
	if err != nil {
		t.Fatal(err)
	}
	checkCaches(t, "parsed", p)

	c := p.Clone()
	checkCaches(t, "cloned", c)

	if err := p.Specialize("rc", "0"); err != nil {
		t.Fatal(err)
	}
	checkCaches(t, "specialized", p)

	if err := p.GeneralizeValue("user1", datatype.NotSpace, "user"); err != nil {
		t.Fatal(err)
	}
	checkCaches(t, "generalized", p)

	if err := p.SetFieldType("user", datatype.AnyData); err != nil {
		t.Fatal(err)
	}
	checkCaches(t, "retyped-to-anydata", p)

	// The clone must be unaffected by edits to the original.
	checkCaches(t, "clone-after-edits", c)
	if c.HasAnyData() {
		t.Error("clone gained a wildcard from an edit to the original")
	}

	// Hand-built patterns have no caches; accessors compute on the fly.
	hand := &Pattern{Tokens: []Token{
		LiteralToken("x"),
		FieldToken(datatype.AnyData, "rest"),
	}}
	checkCaches(t, "hand-built", hand)
}

// TestAppendMatchMatchesMatch: the append API extracts the same fields as
// Match, and reuse of a warmed buffer is allocation-free on the
// wildcard-free path.
func TestAppendMatchMatchesMatch(t *testing.T) {
	p, err := ParsePattern(1, "%{DATETIME:ts} job %{NOTSPACE:id} rc %{NUMBER:rc}")
	if err != nil {
		t.Fatal(err)
	}
	tokens := []string{"2016/02/23 09:00:31.000", "job", "jb-1", "rc", "0"}
	want, ok := p.Match(tokens)
	if !ok {
		t.Fatal("Match failed")
	}
	got, ok := p.AppendMatch(nil, tokens)
	if !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("AppendMatch = %v (%v), want %v", got, ok, want)
	}
	if _, ok := p.AppendMatch(nil, tokens[:3]); ok {
		t.Fatal("AppendMatch matched a truncated line")
	}

	buf := make([]logtypes.Field, 0, 8)
	allocs := testing.AllocsPerRun(100, func() {
		var ok bool
		buf, ok = p.AppendMatch(buf[:0], tokens)
		if !ok {
			t.Fatal("AppendMatch failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendMatch allocates %v with a warm buffer, want 0", allocs)
	}
}
