package grok

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"

	"loglens/internal/datatype"
)

// compileRef compiles a pattern to an anchored regexp — an independent
// reference implementation of matching semantics.
func compileRef(t *testing.T, p *Pattern) *regexp.Regexp {
	t.Helper()
	var b strings.Builder
	b.WriteString("^")
	for i, tok := range p.Tokens {
		sep := " "
		if i == 0 {
			sep = ""
		}
		if tok.IsField && tok.Type == datatype.AnyData {
			// A wildcard absorbs zero tokens (no separator) or a
			// run of tokens with separators.
			if i == 0 {
				b.WriteString(`(?:\S+(?: \S+)* )?`)
			} else if i == len(p.Tokens)-1 {
				b.WriteString(`(?: \S+)*`)
			} else {
				b.WriteString(`(?: \S+)*`)
			}
			continue
		}
		b.WriteString(regexp.QuoteMeta(sep))
		if tok.IsField {
			b.WriteString("(?:" + tok.Type.Regexp() + ")")
		} else {
			b.WriteString(regexp.QuoteMeta(tok.Literal))
		}
	}
	b.WriteString("$")
	re, err := regexp.Compile(b.String())
	if err != nil {
		t.Fatalf("compile %q: %v", b.String(), err)
	}
	return re
}

// genPattern builds a random pattern without leading wildcards (the regex
// reference's leading-wildcard encoding differs in separator handling, so
// we exercise inner and trailing wildcards here; leading wildcards have
// dedicated unit tests).
func genPattern(rng *rand.Rand, id int) *Pattern {
	n := rng.Intn(5) + 1
	p := &Pattern{ID: id}
	words := []string{"login", "error", "disk", "sent", "from"}
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0:
			p.Tokens = append(p.Tokens, LiteralToken(words[rng.Intn(len(words))]))
		case 1:
			p.Tokens = append(p.Tokens, FieldToken(datatype.Number, ""))
		case 2:
			p.Tokens = append(p.Tokens, FieldToken(datatype.Word, ""))
		case 3:
			p.Tokens = append(p.Tokens, FieldToken(datatype.NotSpace, ""))
		default:
			if i > 0 {
				p.Tokens = append(p.Tokens, FieldToken(datatype.AnyData, ""))
			} else {
				p.Tokens = append(p.Tokens, LiteralToken(words[rng.Intn(len(words))]))
			}
		}
	}
	p.AssignFieldIDs()
	return p
}

func genTokens(rng *rand.Rand) []string {
	n := rng.Intn(7)
	out := make([]string, n)
	choices := []string{"login", "error", "42", "-7.5", "abc", "x-1", "disk", "99"}
	for i := range out {
		out[i] = choices[rng.Intn(len(choices))]
	}
	return out
}

// TestMatchAgainstRegexReference differentially tests the token matcher
// (including the wildcard DP) against the regex reference on random
// patterns and logs.
func TestMatchAgainstRegexReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 3000; i++ {
		p := genPattern(rng, 1)
		re := compileRef(t, p)
		tokens := genTokens(rng)
		got := p.Matches(tokens)
		want := re.MatchString(strings.Join(tokens, " "))
		if got != want {
			t.Fatalf("pattern %q vs %v: Match=%v regex=%v", p.String(), tokens, got, want)
		}
	}
}

// TestMatchSelfRendered: a pattern always matches a log rendered from
// itself with conforming field values.
func TestMatchSelfRendered(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	values := map[datatype.Type][]string{
		datatype.Word:     {"alpha", "beta"},
		datatype.Number:   {"42", "-1.5"},
		datatype.IP:       {"10.0.0.1"},
		datatype.NotSpace: {"x-9", "a_b"},
		datatype.DateTime: {"2016/02/23 09:00:31.000"},
	}
	for i := 0; i < 2000; i++ {
		p := genPattern(rng, 1)
		var tokens []string
		for _, tok := range p.Tokens {
			switch {
			case !tok.IsField:
				tokens = append(tokens, tok.Literal)
			case tok.Type == datatype.AnyData:
				for k := rng.Intn(3); k > 0; k-- {
					tokens = append(tokens, "wild")
				}
			default:
				vs := values[tok.Type]
				tokens = append(tokens, vs[rng.Intn(len(vs))])
			}
		}
		if !p.Matches(tokens) {
			t.Fatalf("pattern %q rejected its own rendering %v", p.String(), tokens)
		}
	}
}

// TestFieldExtractionConsistent: extracted non-wildcard field values
// appear in the log at their positions.
func TestFieldExtractionConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 2000; i++ {
		p := genPattern(rng, 1)
		tokens := genTokens(rng)
		fields, ok := p.Match(tokens)
		if !ok {
			continue
		}
		joined := " " + strings.Join(tokens, " ") + " "
		for _, f := range fields {
			if f.Value == "" {
				continue // empty wildcard capture
			}
			if !strings.Contains(joined, " "+f.Value+" ") {
				t.Fatalf("pattern %q extracted %q not present in %v", p.String(), f.Value, tokens)
			}
		}
	}
}
