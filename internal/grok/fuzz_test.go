package grok

import (
	"strings"
	"testing"
)

// FuzzParsePattern: arbitrary pattern text must never panic, and accepted
// patterns must round-trip through String -> ParsePattern.
func FuzzParsePattern(f *testing.F) {
	for _, seed := range []string{
		"%{WORD:Action} DB %{IP:Server} user %{NOTSPACE:UserName}",
		"%{DATETIME:P1F1} %{IP} login user1",
		"%{ANYDATA}",
		"%{BOGUS:x}",
		"literal only tokens",
		"%{WORD:}",
		"%{:name}",
		"%{}",
		"%{WORD:a} %{WORD:a}",
		"  spaces   everywhere  ",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		p, err := ParsePattern(1, text)
		if err != nil {
			return
		}
		again, err := ParsePattern(1, p.String())
		if err != nil {
			t.Fatalf("round trip rejected %q -> %q: %v", text, p.String(), err)
		}
		if again.String() != p.String() {
			t.Fatalf("round trip unstable: %q -> %q", p.String(), again.String())
		}
	})
}

// FuzzMatch: matching arbitrary token sequences against a wildcard
// pattern must never panic, and extracted fields must reassemble into a
// subsequence of the input.
func FuzzMatch(f *testing.F) {
	f.Add("query SELECT x FROM y rc 7")
	f.Add("")
	f.Add("rc")
	f.Add("query rc 0")
	f.Add("query a b c d e f g h i j k l m n o p rc 1")
	p, err := ParsePattern(1, "query %{ANYDATA:sql} rc %{NUMBER:n}")
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, line string) {
		tokens := strings.Fields(line)
		fields, ok := p.Match(tokens)
		if !ok {
			return
		}
		for _, fl := range fields {
			for _, part := range strings.Fields(fl.Value) {
				found := false
				for _, tok := range tokens {
					if tok == part {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("captured %q not in input %q", part, line)
				}
			}
		}
	})
}
