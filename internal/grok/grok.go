// Package grok models LogLens patterns as GROK expressions (§III). A
// pattern is a sequence of tokens, each either a literal or a variable
// field with a datatype and a name ("%{DATETIME:P1F1} %{IP:P1F2} login").
// The package implements parsing and composing GROK text, field-ID
// assignment, pattern signatures, token-level matching with ANYDATA
// wildcard support, and the domain-knowledge edit operations of §III-A4.
package grok

import (
	"fmt"
	"strings"

	"loglens/internal/datatype"
	"loglens/internal/logtypes"
)

// Token is one element of a GROK pattern: either a literal that must match
// the log token exactly, or a variable field.
type Token struct {
	// IsField distinguishes variable fields from literals.
	IsField bool
	// Literal is the exact token text (literals only).
	Literal string
	// Type is the field datatype (fields only).
	Type datatype.Type
	// Name is the field name: a generated PxFy identifier or a
	// semantic name supplied by a heuristic or a user (fields only).
	Name string
}

// FieldToken constructs a variable-field token.
func FieldToken(t datatype.Type, name string) Token {
	return Token{IsField: true, Type: t, Name: name}
}

// LiteralToken constructs a literal token.
func LiteralToken(text string) Token {
	return Token{Literal: text}
}

// String renders the token in GROK notation.
func (t Token) String() string {
	if t.IsField {
		if t.Name == "" {
			return fmt.Sprintf("%%{%s}", t.Type)
		}
		return fmt.Sprintf("%%{%s:%s}", t.Type, t.Name)
	}
	return t.Literal
}

// SignatureType is the datatype the token contributes to the pattern
// signature: the field's type for fields, the detected datatype of the
// literal's value otherwise (§III-B "Pattern-Signature Generation").
func (t Token) SignatureType() datatype.Type {
	if t.IsField {
		return t.Type
	}
	return datatype.Detect(t.Literal)
}

// Pattern is one GROK pattern.
type Pattern struct {
	// ID is the log-pattern identifier (the P in PxFy field IDs).
	ID int
	// Tokens is the pattern body.
	Tokens []Token

	// Cached derived state, precomputed at single-threaded points
	// (ParsePattern, Set.Add, Clone, the edit operations) so the
	// concurrent read-only parse path never writes to a shared Pattern.
	// Patterns built by hand (&Pattern{Tokens: ...}) have empty caches;
	// the accessors then compute without storing, slower but race-free.
	sig        []datatype.Type
	hasAny     int8 // 0 unknown, 1 no wildcard, 2 has wildcard
	generality int  // valid when hasAny != 0
}

// precompute fills the derived-state caches. Callers must hold the only
// reference to p or be the single goroutine mutating it.
func (p *Pattern) precompute() {
	sig := p.sig
	if cap(sig) < len(p.Tokens) {
		sig = make([]datatype.Type, len(p.Tokens))
	}
	sig = sig[:len(p.Tokens)]
	hasAny := false
	g := 0
	for i, t := range p.Tokens {
		sig[i] = t.SignatureType()
		if t.IsField {
			g += t.Type.Generality()
			if t.Type == datatype.AnyData {
				hasAny = true
			}
		}
	}
	p.sig = sig
	p.generality = g
	if hasAny {
		p.hasAny = 2
	} else {
		p.hasAny = 1
	}
}

// ParsePattern parses GROK text produced by Pattern.String (or written by
// a user) into a Pattern. Tokens are whitespace-separated; field tokens
// have the form %{TYPE} or %{TYPE:Name}.
func ParsePattern(id int, text string) (*Pattern, error) {
	fields := strings.Fields(text)
	p := &Pattern{ID: id, Tokens: make([]Token, 0, len(fields))}
	for _, f := range fields {
		if strings.HasPrefix(f, "%{") && strings.HasSuffix(f, "}") {
			body := f[2 : len(f)-1]
			typeName, fieldName := body, ""
			if i := strings.IndexByte(body, ':'); i >= 0 {
				typeName, fieldName = body[:i], body[i+1:]
			}
			typ, err := datatype.Parse(typeName)
			if err != nil {
				return nil, fmt.Errorf("grok: pattern %d: %w", id, err)
			}
			p.Tokens = append(p.Tokens, FieldToken(typ, fieldName))
			continue
		}
		p.Tokens = append(p.Tokens, LiteralToken(f))
	}
	if len(p.Tokens) == 0 {
		return nil, fmt.Errorf("grok: pattern %d: empty pattern", id)
	}
	p.precompute()
	return p, nil
}

// String renders the pattern in GROK notation.
func (p *Pattern) String() string {
	parts := make([]string, len(p.Tokens))
	for i, t := range p.Tokens {
		parts[i] = t.String()
	}
	return strings.Join(parts, " ")
}

// Clone returns a deep copy of the pattern.
func (p *Pattern) Clone() *Pattern {
	q := &Pattern{
		ID:         p.ID,
		Tokens:     make([]Token, len(p.Tokens)),
		hasAny:     p.hasAny,
		generality: p.generality,
	}
	copy(q.Tokens, p.Tokens)
	if p.sig != nil {
		q.sig = make([]datatype.Type, len(p.sig))
		copy(q.sig, p.sig)
	}
	return q
}

// Signature returns the pattern-signature: the space-joined datatype names
// of all tokens.
func (p *Pattern) Signature() string {
	parts := make([]string, len(p.Tokens))
	for i, t := range p.Tokens {
		parts[i] = t.SignatureType().String()
	}
	return strings.Join(parts, " ")
}

// SignatureTypes returns the signature as a datatype slice. The caller
// owns the returned slice.
func (p *Pattern) SignatureTypes() []datatype.Type {
	out := make([]datatype.Type, len(p.Tokens))
	if p.sig != nil {
		copy(out, p.sig)
		return out
	}
	for i, t := range p.Tokens {
		out[i] = t.SignatureType()
	}
	return out
}

// HasAnyData reports whether the pattern contains an ANYDATA wildcard.
// Called on every match attempt, so the answer is precomputed; the scan
// below only runs for hand-built patterns with no caches.
func (p *Pattern) HasAnyData() bool {
	if p.hasAny != 0 {
		return p.hasAny == 2
	}
	for _, t := range p.Tokens {
		if t.IsField && t.Type == datatype.AnyData {
			return true
		}
	}
	return false
}

// Generality is the sort key for candidate-pattern-groups: groups are
// scanned in ascending generality so the most specific pattern parses the
// log (§III-B step 2). It sums token generalities; literals rank below any
// field.
func (p *Pattern) Generality() int {
	if p.hasAny != 0 {
		return p.generality
	}
	g := 0
	for _, t := range p.Tokens {
		if t.IsField {
			g += t.Type.Generality()
		}
	}
	return g
}

// FieldCount returns the number of variable fields.
func (p *Pattern) FieldCount() int {
	n := 0
	for _, t := range p.Tokens {
		if t.IsField {
			n++
		}
	}
	return n
}

// Field returns the index of the named field token, or -1.
func (p *Pattern) Field(name string) int {
	for i, t := range p.Tokens {
		if t.IsField && t.Name == name {
			return i
		}
	}
	return -1
}

// AssignFieldIDs names every unnamed field with the generated PxFy scheme:
// pattern ID x, field sequence y counted from 1 (§III-A3). Fields that
// already carry a name (heuristic or user-assigned) are left alone, but
// still consume a sequence number.
func (p *Pattern) AssignFieldIDs() {
	seq := 0
	for i := range p.Tokens {
		if !p.Tokens[i].IsField {
			continue
		}
		seq++
		if p.Tokens[i].Name == "" {
			p.Tokens[i].Name = fmt.Sprintf("P%dF%d", p.ID, seq)
		}
	}
}

// Match matches a tokenized log against the pattern and extracts its
// fields. For patterns without ANYDATA the match is a direct token-wise
// comparison; ANYDATA patterns use dynamic programming so the wildcard can
// absorb any number of tokens (including zero). The returned fields are in
// pattern order; an ANYDATA field's value is the space-joined absorbed
// tokens.
func (p *Pattern) Match(tokens []string) ([]logtypes.Field, bool) {
	if !p.HasAnyData() {
		fields, ok := p.appendMatchExact(nil, tokens)
		if !ok {
			return nil, false
		}
		return fields, true
	}
	return p.matchDP(tokens)
}

// AppendMatch is Match appending the extracted fields to dst, so a caller
// reusing dst across lines pays zero steady-state allocations on the
// wildcard-free path. On a failed match dst is returned unchanged.
func (p *Pattern) AppendMatch(dst []logtypes.Field, tokens []string) ([]logtypes.Field, bool) {
	if !p.HasAnyData() {
		return p.appendMatchExact(dst, tokens)
	}
	fields, ok := p.matchDP(tokens)
	if !ok {
		return dst, false
	}
	return append(dst, fields...), true
}

// Matches reports whether the pattern matches without extracting fields.
func (p *Pattern) Matches(tokens []string) bool {
	_, ok := p.Match(tokens)
	return ok
}

func (p *Pattern) appendMatchExact(dst []logtypes.Field, tokens []string) ([]logtypes.Field, bool) {
	if len(tokens) != len(p.Tokens) {
		return dst, false
	}
	for i, pt := range p.Tokens {
		if pt.IsField {
			if !datatype.Matches(pt.Type, tokens[i]) {
				return dst, false
			}
			continue
		}
		if pt.Literal != tokens[i] {
			return dst, false
		}
	}
	if dst == nil {
		// One exact-size allocation for callers without a reusable
		// buffer; the failure paths above stay allocation-free.
		dst = make([]logtypes.Field, 0, p.FieldCount())
	}
	for i, pt := range p.Tokens {
		if pt.IsField {
			dst = append(dst, logtypes.Field{Name: pt.Name, Value: tokens[i]})
		}
	}
	return dst, true
}

// matchDP is the wildcard-aware matcher. T[i][j] is true when the first i
// log tokens are matched by the first j pattern tokens; ANYDATA admits
// T[i][j] = T[i][j-1] || T[i-1][j] (absorb nothing / absorb one more).
func (p *Pattern) matchDP(tokens []string) ([]logtypes.Field, bool) {
	r, s := len(tokens), len(p.Tokens)
	t := make([][]bool, r+1)
	for i := range t {
		t[i] = make([]bool, s+1)
	}
	t[0][0] = true
	for j := 1; j <= s; j++ {
		// Empty log prefix: only leading ANYDATA tokens can match.
		pt := p.Tokens[j-1]
		t[0][j] = t[0][j-1] && pt.IsField && pt.Type == datatype.AnyData
	}
	for i := 1; i <= r; i++ {
		for j := 1; j <= s; j++ {
			pt := p.Tokens[j-1]
			switch {
			case pt.IsField && pt.Type == datatype.AnyData:
				t[i][j] = t[i][j-1] || t[i-1][j]
			case pt.IsField:
				t[i][j] = t[i-1][j-1] && datatype.Matches(pt.Type, tokens[i-1])
			default:
				t[i][j] = t[i-1][j-1] && pt.Literal == tokens[i-1]
			}
		}
	}
	if !t[r][s] {
		return nil, false
	}

	// Traceback to recover field captures. ANYDATA prefers absorbing as
	// little as possible (T[i][j-1] first) so neighbouring specific
	// fields keep their tokens.
	type capture struct {
		tokenIdx int // pattern token index
		parts    []string
	}
	var caps []capture
	i, j := r, s
	for j > 0 {
		pt := p.Tokens[j-1]
		if pt.IsField && pt.Type == datatype.AnyData {
			var parts []string
			for i > 0 && !t[i][j-1] && t[i-1][j] {
				parts = append(parts, tokens[i-1])
				i--
			}
			// Reverse absorbed tokens into reading order.
			for a, b := 0, len(parts)-1; a < b; a, b = a+1, b-1 {
				parts[a], parts[b] = parts[b], parts[a]
			}
			caps = append(caps, capture{tokenIdx: j - 1, parts: parts})
			j--
			continue
		}
		if pt.IsField {
			caps = append(caps, capture{tokenIdx: j - 1, parts: []string{tokens[i-1]}})
		}
		i--
		j--
	}

	fields := make([]logtypes.Field, 0, len(caps))
	for k := len(caps) - 1; k >= 0; k-- {
		c := caps[k]
		fields = append(fields, logtypes.Field{
			Name:  p.Tokens[c.tokenIdx].Name,
			Value: strings.Join(c.parts, " "),
		})
	}
	return fields, true
}
