package grok_test

import (
	"fmt"

	"loglens/internal/datatype"
	"loglens/internal/grok"
)

// The paper's §III running example: parsing "Connect DB 127.0.0.1 user
// abc123" with a GROK pattern.
func ExamplePattern_Match() {
	p, _ := grok.ParsePattern(1, "%{WORD:Action} DB %{IP:Server} user %{NOTSPACE:UserName}")
	fields, ok := p.Match([]string{"Connect", "DB", "127.0.0.1", "user", "abc123"})
	fmt.Println(ok)
	for _, f := range fields {
		fmt.Printf("%s=%s\n", f.Name, f.Value)
	}
	// Output:
	// true
	// Action=Connect
	// Server=127.0.0.1
	// UserName=abc123
}

// Domain-knowledge edits (§III-A4): renaming a generated field and
// generalizing a literal.
func ExamplePattern_RenameField() {
	p, _ := grok.ParsePattern(1, "%{DATETIME:P1F1} %{IP:P1F2} login user1")
	p.RenameField("P1F1", "logTime")
	p.GeneralizeValue("user1", datatype.NotSpace, "userName")
	fmt.Println(p)
	// Output:
	// %{DATETIME:logTime} %{IP:P1F2} login %{NOTSPACE:userName}
}

// Pattern signatures drive the parser's O(1) index (§III-B).
func ExamplePattern_Signature() {
	p, _ := grok.ParsePattern(1, "%{DATETIME:P1F1} %{IP:P1F2} %{WORD:P1F3} user1")
	fmt.Println(p.Signature())
	// Output:
	// DATETIME IP WORD NOTSPACE
}
