package grok

import "loglens/internal/datatype"

// Shadowing is model QA for the reviewer (§II: experts inspect models):
// pattern B is shadowed by pattern A when every log B parses, A parses
// too and A is at least as specific — so B can never win a candidate
// group scan and is dead weight (usually a sign that clustering split one
// template, or that a user edit over-generalized a pattern).

// ShadowPair reports one shadowed pattern.
type ShadowPair struct {
	// Shadowed is the unreachable pattern's ID; By is the pattern that
	// absorbs its traffic.
	Shadowed, By int
}

// FindShadowed returns every shadowed pattern in the set. Wildcard
// patterns are compared structurally only when shapes align one to one;
// ANYDATA-bearing patterns are conservative (they shadow nothing unless
// identical in length).
func FindShadowed(s *Set) []ShadowPair {
	patterns := s.Patterns()
	var out []ShadowPair
	for _, b := range patterns {
		for _, a := range patterns {
			if a.ID == b.ID {
				continue
			}
			// b is dead only if a accepts everything b accepts AND
			// a is scanned before b in candidate groups (ascending
			// generality, then length): every log that could reach
			// b is taken by a first.
			if covers(a, b) && scanOrderBefore(a, b) {
				out = append(out, ShadowPair{Shadowed: b.ID, By: a.ID})
				break
			}
		}
	}
	return out
}

// covers reports whether pattern a accepts every log pattern b accepts.
// It requires positionally aligned tokens (equal length, no ANYDATA
// length variance beyond identical placement).
func covers(a, b *Pattern) bool {
	if len(a.Tokens) != len(b.Tokens) {
		return false
	}
	for i := range a.Tokens {
		at, bt := a.Tokens[i], b.Tokens[i]
		switch {
		case at.IsField && at.Type == datatype.AnyData:
			// A wildcard aligned one-to-one absorbs any single
			// token; with equal lengths this is sound.
			continue
		case bt.IsField && bt.Type == datatype.AnyData:
			return false
		case at.IsField && bt.IsField:
			if !datatype.Covers(at.Type, bt.Type) {
				return false
			}
		case at.IsField && !bt.IsField:
			if !datatype.Matches(at.Type, bt.Literal) {
				return false
			}
		case !at.IsField && bt.IsField:
			return false
		default:
			if at.Literal != bt.Literal {
				return false
			}
		}
	}
	return true
}

// scanOrderBefore mirrors the parser's candidate ordering: ascending
// generality, then token count, then ID.
func scanOrderBefore(a, b *Pattern) bool {
	ga, gb := a.Generality(), b.Generality()
	if ga != gb {
		return ga < gb
	}
	if len(a.Tokens) != len(b.Tokens) {
		return len(a.Tokens) < len(b.Tokens)
	}
	return a.ID < b.ID
}
