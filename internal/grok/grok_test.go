package grok

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"loglens/internal/datatype"
	"loglens/internal/logtypes"
)

func mustPattern(t *testing.T, id int, text string) *Pattern {
	t.Helper()
	p, err := ParsePattern(id, text)
	if err != nil {
		t.Fatalf("ParsePattern(%q): %v", text, err)
	}
	return p
}

func TestParseComposeRoundTrip(t *testing.T) {
	texts := []string{
		"%{WORD:Action} DB %{IP:Server} user %{NOTSPACE:UserName}",
		"%{DATETIME:P1F1} %{IP:P1F2} %{WORD:P1F3} user1",
		"login %{NOTSPACE} done",
		"%{ANYDATA:rest}",
	}
	for _, text := range texts {
		p := mustPattern(t, 1, text)
		if got := p.String(); got != text {
			t.Errorf("round trip: got %q, want %q", got, text)
		}
	}
}

func TestParsePatternErrors(t *testing.T) {
	if _, err := ParsePattern(1, "%{BOGUS:x} y"); err == nil {
		t.Error("unknown datatype must fail")
	}
	if _, err := ParsePattern(1, "   "); err == nil {
		t.Error("empty pattern must fail")
	}
}

func TestSignature(t *testing.T) {
	// The paper's example: pattern "%{DATETIME:P1F1} %{IP:P1F2}
	// %{WORD:P1F3} user1" has signature "DATETIME IP WORD NOTSPACE".
	p := mustPattern(t, 1, "%{DATETIME:P1F1} %{IP:P1F2} %{WORD:P1F3} user1")
	if got := p.Signature(); got != "DATETIME IP WORD NOTSPACE" {
		t.Errorf("Signature() = %q", got)
	}
}

func TestMatchExact(t *testing.T) {
	// The paper's running example.
	p := mustPattern(t, 1, "%{WORD:Action} DB %{IP:Server} user %{NOTSPACE:UserName}")
	fields, ok := p.Match(strings.Fields("Connect DB 127.0.0.1 user abc123"))
	if !ok {
		t.Fatal("no match")
	}
	want := []logtypes.Field{
		{Name: "Action", Value: "Connect"},
		{Name: "Server", Value: "127.0.0.1"},
		{Name: "UserName", Value: "abc123"},
	}
	if !reflect.DeepEqual(fields, want) {
		t.Errorf("fields = %v, want %v", fields, want)
	}
	pl := logtypes.ParsedLog{Fields: fields}
	if got := pl.JSON(); got != `{"Action": "Connect", "Server": "127.0.0.1", "UserName": "abc123"}` {
		t.Errorf("JSON output = %s", got)
	}
}

func TestMatchRejects(t *testing.T) {
	p := mustPattern(t, 1, "%{WORD:Action} DB %{IP:Server} user %{NOTSPACE:UserName}")
	for _, line := range []string{
		"Connect DB 127.0.0.1 user",          // too short
		"Connect DB 127.0.0.1 user abc123 x", // too long
		"Connect XX 127.0.0.1 user abc123",   // literal mismatch
		"Connect DB not-an-ip user abc123",   // datatype mismatch
		"123abc DB 127.0.0.1 user abc123",    // WORD violated
		"Connect DB 127.0.0.1.9 user abc123", // IP violated
	} {
		if p.Matches(strings.Fields(line)) {
			t.Errorf("pattern should not match %q", line)
		}
	}
}

func TestMatchAnyDataMiddle(t *testing.T) {
	p := mustPattern(t, 1, "query %{ANYDATA:sql} took %{NUMBER:ms} ms")
	fields, ok := p.Match(strings.Fields("query SELECT * FROM t WHERE x=1 took 42 ms"))
	if !ok {
		t.Fatal("no match")
	}
	byName := map[string]string{}
	for _, f := range fields {
		byName[f.Name] = f.Value
	}
	if byName["sql"] != "SELECT * FROM t WHERE x=1" {
		t.Errorf("sql = %q", byName["sql"])
	}
	if byName["ms"] != "42" {
		t.Errorf("ms = %q", byName["ms"])
	}
}

func TestMatchAnyDataEmpty(t *testing.T) {
	p := mustPattern(t, 1, "start %{ANYDATA:rest}")
	fields, ok := p.Match([]string{"start"})
	if !ok {
		t.Fatal("ANYDATA must match zero tokens")
	}
	if fields[0].Value != "" {
		t.Errorf("empty wildcard captured %q", fields[0].Value)
	}
}

func TestMatchAnyDataLeading(t *testing.T) {
	p := mustPattern(t, 1, "%{ANYDATA:prefix} error %{NUMBER:code}")
	fields, ok := p.Match(strings.Fields("a b c error 500"))
	if !ok {
		t.Fatal("no match")
	}
	if fields[0].Value != "a b c" || fields[1].Value != "500" {
		t.Errorf("fields = %v", fields)
	}
	// Leading wildcard absorbing nothing.
	fields, ok = p.Match(strings.Fields("error 500"))
	if !ok {
		t.Fatal("no match with empty prefix")
	}
	if fields[0].Value != "" {
		t.Errorf("prefix = %q", fields[0].Value)
	}
}

func TestMatchTwoAnyData(t *testing.T) {
	p := mustPattern(t, 1, "%{ANYDATA:a} sep %{ANYDATA:b}")
	fields, ok := p.Match(strings.Fields("x y sep z"))
	if !ok {
		t.Fatal("no match")
	}
	if fields[0].Value != "x y" || fields[1].Value != "z" {
		t.Errorf("fields = %v", fields)
	}
	if p.Matches(strings.Fields("x y z")) {
		t.Error("must not match without the separator literal")
	}
}

func TestAnyDataMinimalAbsorption(t *testing.T) {
	// The wildcard must leave tokens for the specific fields after it.
	p := mustPattern(t, 1, "%{ANYDATA:a} %{NUMBER:n}")
	fields, ok := p.Match(strings.Fields("x 1 2"))
	if !ok {
		t.Fatal("no match")
	}
	if fields[0].Value != "x 1" || fields[1].Value != "2" {
		t.Errorf("fields = %v", fields)
	}
}

func TestAssignFieldIDs(t *testing.T) {
	p := mustPattern(t, 7, "%{DATETIME} %{IP} login %{NOTSPACE:user}")
	p.AssignFieldIDs()
	if got := p.String(); got != "%{DATETIME:P7F1} %{IP:P7F2} login %{NOTSPACE:user}" {
		t.Errorf("got %q", got)
	}
}

func TestEditOperations(t *testing.T) {
	p := mustPattern(t, 1, "%{DATETIME:P1F1} %{IP:P1F2} login user1")

	// Rename: P1F1 -> logTime.
	if err := p.RenameField("P1F1", "logTime"); err != nil {
		t.Fatal(err)
	}
	if p.Field("logTime") != 0 {
		t.Error("rename failed")
	}
	if err := p.RenameField("missing", "x"); err == nil {
		t.Error("renaming a missing field must fail")
	}
	if err := p.RenameField("logTime", "P1F2"); err == nil {
		t.Error("renaming onto an existing field must fail")
	}

	// Specialize: %{IP:P1F2} -> 127.0.0.1.
	if err := p.Specialize("P1F2", "127.0.0.1"); err != nil {
		t.Fatal(err)
	}
	if p.Tokens[1].IsField || p.Tokens[1].Literal != "127.0.0.1" {
		t.Error("specialize failed")
	}

	// Generalize: user1 -> %{NOTSPACE:userName}.
	if err := p.GeneralizeValue("user1", datatype.NotSpace, "userName"); err != nil {
		t.Fatal(err)
	}
	if p.Field("userName") != 3 {
		t.Error("generalize failed")
	}
	if got := p.String(); got != "%{DATETIME:logTime} 127.0.0.1 login %{NOTSPACE:userName}" {
		t.Errorf("final pattern %q", got)
	}

	// SetFieldType: widen to ANYDATA.
	if err := p.SetFieldType("userName", datatype.AnyData); err != nil {
		t.Fatal(err)
	}
	if !p.HasAnyData() {
		t.Error("SetFieldType to ANYDATA failed")
	}
}

func TestGeneralizeValidation(t *testing.T) {
	p := mustPattern(t, 1, "login user1")
	if err := p.Generalize(1, datatype.Number, "n"); err == nil {
		t.Error("generalizing non-number literal to NUMBER must fail")
	}
	if err := p.Generalize(9, datatype.Word, "w"); err == nil {
		t.Error("out of range index must fail")
	}
}

func TestHeuristicNames(t *testing.T) {
	// The paper's example: "PDU = %{NUMBER:P1F1}" is automatically
	// renamed to "PDU = %{NUMBER:PDU}".
	p := mustPattern(t, 1, "PDU = %{NUMBER:P1F1}")
	if n := p.ApplyHeuristicNames(); n != 1 {
		t.Fatalf("renamed %d fields, want 1", n)
	}
	if got := p.String(); got != "PDU = %{NUMBER:PDU}" {
		t.Errorf("got %q", got)
	}

	// "key:" shape.
	p = mustPattern(t, 2, "status: %{WORD:P2F1} rc= %{NUMBER:P2F2}")
	if n := p.ApplyHeuristicNames(); n != 2 {
		t.Fatalf("renamed %d fields, want 2", n)
	}
	if p.Field("status") < 0 || p.Field("rc") < 0 {
		t.Errorf("got %q", p.String())
	}

	// No heuristic match: generic name kept.
	p = mustPattern(t, 3, "%{WORD:P3F1} end")
	if n := p.ApplyHeuristicNames(); n != 0 {
		t.Errorf("renamed %d fields, want 0", n)
	}

	// User-assigned names are never overwritten.
	p = mustPattern(t, 4, "PDU = %{NUMBER:myName}")
	if n := p.ApplyHeuristicNames(); n != 0 {
		t.Errorf("renamed user-named field: %q", p.String())
	}

	// Duplicate keys: only the first field takes the name.
	p = mustPattern(t, 5, "x = %{NUMBER:P5F1} x = %{NUMBER:P5F2}")
	p.ApplyHeuristicNames()
	if p.Field("x") < 0 || p.Field("P5F2") < 0 {
		t.Errorf("got %q", p.String())
	}
}

func TestGenerality(t *testing.T) {
	specific := mustPattern(t, 1, "%{DATETIME:a} %{IP:b} login")
	general := mustPattern(t, 2, "%{DATETIME:a} %{NOTSPACE:b} login")
	wildcard := mustPattern(t, 3, "%{DATETIME:a} %{ANYDATA:b} login")
	if !(specific.Generality() < general.Generality() && general.Generality() < wildcard.Generality()) {
		t.Errorf("generality order violated: %d %d %d",
			specific.Generality(), general.Generality(), wildcard.Generality())
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet()
	id1 := s.Add(mustPattern(t, 0, "%{WORD} one"))
	id2 := s.Add(mustPattern(t, 0, "%{WORD} two"))
	if id1 == id2 {
		t.Fatal("IDs must be unique")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	p, ok := s.Get(id1)
	if !ok {
		t.Fatal("Get failed")
	}
	// Field IDs assigned on Add.
	if p.Tokens[0].Name == "" {
		t.Error("Add must assign field IDs")
	}
	if !s.Delete(id1) || s.Delete(id1) {
		t.Error("Delete semantics")
	}
	// Explicit IDs are preserved and advance the counter.
	s2 := NewSet()
	s2.Add(mustPattern(t, 10, "fixed %{NUMBER}"))
	if id := s2.Add(mustPattern(t, 0, "auto %{NUMBER}")); id != 11 {
		t.Errorf("next auto ID = %d, want 11", id)
	}
}

func TestSetJSONRoundTrip(t *testing.T) {
	s := NewSet()
	s.Add(mustPattern(t, 0, "%{DATETIME} %{IP} login %{NOTSPACE:user}"))
	s.Add(mustPattern(t, 0, "%{DATETIME} %{IP} logout %{NOTSPACE:user}"))
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var s2 Set
	if err := json.Unmarshal(data, &s2); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("round trip lost patterns: %d", s2.Len())
	}
	for _, p := range s.Patterns() {
		q, ok := s2.Get(p.ID)
		if !ok || q.String() != p.String() {
			t.Errorf("pattern %d: %q != %q", p.ID, q, p)
		}
	}
}

func TestSetClone(t *testing.T) {
	s := NewSet()
	id := s.Add(mustPattern(t, 0, "%{WORD:w} x"))
	c := s.Clone()
	cp, _ := c.Get(id)
	if err := cp.RenameField("w", "renamed"); err != nil {
		t.Fatal(err)
	}
	op, _ := s.Get(id)
	if op.Field("renamed") >= 0 {
		t.Error("Clone must deep-copy patterns")
	}
}

func TestFindShadowed(t *testing.T) {
	s := NewSet()
	specific := mustPattern(t, 0, "job %{WORD:v} done")
	general := mustPattern(t, 0, "job %{NOTSPACE:v} done")
	other := mustPattern(t, 0, "disk %{NUMBER:pct} full")
	s.Add(specific)
	s.Add(general)
	s.Add(other)

	pairs := FindShadowed(s)
	// The WORD pattern is NOT shadowed (NOTSPACE logs exist it cannot
	// take); nothing here is dead: general catches x-1 etc.
	if len(pairs) != 0 {
		t.Fatalf("pairs = %+v, want none (general is reachable)", pairs)
	}

	// A duplicate of the general pattern IS dead: identical language,
	// scanned later.
	dup := mustPattern(t, 0, "job %{NOTSPACE:w} done")
	s.Add(dup)
	pairs = FindShadowed(s)
	if len(pairs) != 1 || pairs[0].Shadowed != dup.ID || pairs[0].By != general.ID {
		t.Fatalf("pairs = %+v", pairs)
	}

	// A literal specialization shadowed by a field pattern: "job alpha
	// done" never wins against... no: the literal is MORE specific
	// (lower generality) so it scans first and is reachable.
	lit := mustPattern(t, 0, "job alpha done")
	s.Add(lit)
	for _, p := range FindShadowed(s) {
		if p.Shadowed == lit.ID {
			t.Fatalf("literal pattern wrongly reported shadowed: %+v", p)
		}
	}
}

func TestFindShadowedWildcards(t *testing.T) {
	s := NewSet()
	s.Add(mustPattern(t, 0, "query %{ANYDATA:sql} rc %{NUMBER:n}"))
	s.Add(mustPattern(t, 0, "query %{NOTSPACE:q} rc %{NUMBER:n}"))
	// The 4-token wildcard pattern aligned 1:1 covers the NOTSPACE one,
	// but the NOTSPACE one is more specific and scans first: reachable.
	// The wildcard pattern accepts other lengths: not shadowed either.
	if pairs := FindShadowed(s); len(pairs) != 0 {
		t.Fatalf("pairs = %+v", pairs)
	}
}
