package grok

import (
	"fmt"
	"strings"

	"loglens/internal/datatype"
)

// The edit operations of §III-A4 let users incorporate domain knowledge
// into automatically generated patterns: renaming fields, specializing a
// field to a fixed value, generalizing a literal into a field, and editing
// field datatypes (including the ANYDATA wildcard).

// RenameField gives field oldName the semantic name newName (e.g. "P1F1"
// -> "logTime").
func (p *Pattern) RenameField(oldName, newName string) error {
	if newName == "" {
		return fmt.Errorf("grok: rename %q: empty new name", oldName)
	}
	i := p.Field(oldName)
	if i < 0 {
		return fmt.Errorf("grok: rename: no field %q in pattern %d", oldName, p.ID)
	}
	if j := p.Field(newName); j >= 0 && j != i {
		return fmt.Errorf("grok: rename: field %q already exists in pattern %d", newName, p.ID)
	}
	p.Tokens[i].Name = newName
	return nil
}

// Specialize replaces the named field with a fixed literal value (e.g.
// %{IP:P1F2} -> 127.0.0.1).
func (p *Pattern) Specialize(fieldName, value string) error {
	i := p.Field(fieldName)
	if i < 0 {
		return fmt.Errorf("grok: specialize: no field %q in pattern %d", fieldName, p.ID)
	}
	if strings.ContainsAny(value, " \t") {
		return fmt.Errorf("grok: specialize %q: value must be a single token", fieldName)
	}
	p.Tokens[i] = LiteralToken(value)
	p.precompute()
	return nil
}

// Generalize converts the literal token at index idx into a variable field
// of the given datatype (e.g. user1 -> %{NOTSPACE:userName}).
func (p *Pattern) Generalize(idx int, typ datatype.Type, name string) error {
	if idx < 0 || idx >= len(p.Tokens) {
		return fmt.Errorf("grok: generalize: token index %d out of range in pattern %d", idx, p.ID)
	}
	if p.Tokens[idx].IsField {
		return fmt.Errorf("grok: generalize: token %d of pattern %d is already a field", idx, p.ID)
	}
	if name != "" && p.Field(name) >= 0 {
		return fmt.Errorf("grok: generalize: field %q already exists in pattern %d", name, p.ID)
	}
	if typ != datatype.AnyData && !datatype.Matches(typ, p.Tokens[idx].Literal) {
		return fmt.Errorf("grok: generalize: literal %q does not conform to %v", p.Tokens[idx].Literal, typ)
	}
	p.Tokens[idx] = FieldToken(typ, name)
	p.precompute()
	return nil
}

// GeneralizeValue finds the first literal token equal to value and
// generalizes it.
func (p *Pattern) GeneralizeValue(value string, typ datatype.Type, name string) error {
	for i, t := range p.Tokens {
		if !t.IsField && t.Literal == value {
			return p.Generalize(i, typ, name)
		}
	}
	return fmt.Errorf("grok: generalize: no literal %q in pattern %d", value, p.ID)
}

// SetFieldType edits the datatype of the named field. Widening to ANYDATA
// is how users include multiple tokens under one field.
func (p *Pattern) SetFieldType(fieldName string, typ datatype.Type) error {
	i := p.Field(fieldName)
	if i < 0 {
		return fmt.Errorf("grok: set type: no field %q in pattern %d", fieldName, p.ID)
	}
	p.Tokens[i].Type = typ
	p.precompute()
	return nil
}

// ApplyHeuristicNames renames generated PxFy field names using commonly
// occurring log idioms, so parsed output is readable without manual
// renaming (§III-A4). Recognized shapes, for a field at token i:
//
//	key = %{...}   -> field named key  ("PDU = %{NUMBER:P1F1}" -> PDU)
//	key: %{...}    -> field named key
//	key= %{...}    -> field named key
//
// Only fields whose current name is empty or a generated PxFy identifier
// are renamed, and a name is applied only once per pattern.
func (p *Pattern) ApplyHeuristicNames() int {
	renamed := 0
	taken := map[string]bool{}
	for _, t := range p.Tokens {
		if t.IsField && t.Name != "" {
			taken[t.Name] = true
		}
	}
	for i := range p.Tokens {
		t := &p.Tokens[i]
		if !t.IsField || !isGeneratedName(p.ID, t.Name) {
			continue
		}
		key := heuristicKey(p.Tokens, i)
		if key == "" || taken[key] {
			continue
		}
		t.Name = key
		taken[key] = true
		renamed++
	}
	return renamed
}

// heuristicKey inspects the literals before field index i and extracts a
// key name if they form a "key =", "key:", or "key=" shape.
func heuristicKey(tokens []Token, i int) string {
	prev := func(k int) (Token, bool) {
		if k < 0 || tokens[k].IsField {
			return Token{}, false
		}
		return tokens[k], true
	}
	// "key = value": two literal tokens before the field.
	if sep, ok := prev(i - 1); ok && (sep.Literal == "=" || sep.Literal == ":") {
		if key, ok := prev(i - 2); ok && isIdentifier(key.Literal) {
			return key.Literal
		}
		return ""
	}
	// "key= value" or "key: value": one literal ending in '=' or ':'.
	if key, ok := prev(i - 1); ok {
		lit := key.Literal
		if len(lit) > 1 && (strings.HasSuffix(lit, "=") || strings.HasSuffix(lit, ":")) {
			name := lit[:len(lit)-1]
			if isIdentifier(name) {
				return name
			}
		}
	}
	return ""
}

// isGeneratedName reports whether name is empty or the generated PxFy form
// for pattern id.
func isGeneratedName(id int, name string) bool {
	if name == "" {
		return true
	}
	var pid, seq int
	n, err := fmt.Sscanf(name, "P%dF%d", &pid, &seq)
	return err == nil && n == 2 && pid == id
}

// isIdentifier reports whether s looks like a key name: letters, digits,
// '_', '-', '.' with a leading letter.
func isIdentifier(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z') {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-', c == '.':
		default:
			return false
		}
	}
	return true
}
