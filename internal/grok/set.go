package grok

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Set is a pattern collection — the log-pattern model produced by the
// model builder and consumed by the parser. It supports the model-manager
// operations (add, delete, lookup) and JSON (de)serialization for the
// model storage.
type Set struct {
	patterns map[int]*Pattern
	nextID   int
}

// NewSet returns an empty pattern set with IDs starting at 1.
func NewSet() *Set {
	return &Set{patterns: make(map[int]*Pattern), nextID: 1}
}

// Add inserts a pattern, assigning it the next free ID when p.ID is zero,
// and assigns generated field IDs to unnamed fields. It returns the
// pattern's ID.
func (s *Set) Add(p *Pattern) int {
	if p.ID == 0 {
		p.ID = s.nextID
	}
	if p.ID >= s.nextID {
		s.nextID = p.ID + 1
	}
	p.AssignFieldIDs()
	p.precompute()
	s.patterns[p.ID] = p
	return p.ID
}

// Delete removes the pattern with the given ID. It reports whether a
// pattern was removed.
func (s *Set) Delete(id int) bool {
	if _, ok := s.patterns[id]; !ok {
		return false
	}
	delete(s.patterns, id)
	return true
}

// Get returns the pattern with the given ID.
func (s *Set) Get(id int) (*Pattern, bool) {
	p, ok := s.patterns[id]
	return p, ok
}

// Len returns the number of patterns.
func (s *Set) Len() int { return len(s.patterns) }

// Patterns returns all patterns ordered by ID in a fresh slice the
// caller owns. It is read-only on the set, so parsers on different
// partition workers may call it concurrently against a shared model
// (it is a cold path: candidate-group builds and serialization).
func (s *Set) Patterns() []*Pattern {
	out := make([]*Pattern, 0, len(s.patterns))
	for _, p := range s.patterns {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Clone returns a deep copy of the set, so edits on one copy (model
// updates) never disturb detectors holding the other.
func (s *Set) Clone() *Set {
	c := NewSet()
	c.nextID = s.nextID
	for id, p := range s.patterns {
		c.patterns[id] = p.Clone()
	}
	return c
}

// setJSON is the serialized form: the GROK text round-trips through
// ParsePattern, keeping stored models human-editable (§II model manager
// lets experts inspect and edit models).
type setJSON struct {
	Patterns []patternJSON `json:"patterns"`
}

type patternJSON struct {
	ID   int    `json:"id"`
	Grok string `json:"grok"`
}

// MarshalJSON serializes the set with each pattern in GROK text form.
func (s *Set) MarshalJSON() ([]byte, error) {
	out := setJSON{Patterns: make([]patternJSON, 0, len(s.patterns))}
	for _, p := range s.Patterns() {
		out.Patterns = append(out.Patterns, patternJSON{ID: p.ID, Grok: p.String()})
	}
	return json.Marshal(out)
}

// UnmarshalJSON deserializes a set produced by MarshalJSON (or edited by a
// user).
func (s *Set) UnmarshalJSON(data []byte) error {
	var in setJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("grok: unmarshal set: %w", err)
	}
	s.patterns = make(map[int]*Pattern, len(in.Patterns))
	s.nextID = 1
	for _, pj := range in.Patterns {
		p, err := ParsePattern(pj.ID, pj.Grok)
		if err != nil {
			return err
		}
		s.Add(p)
	}
	return nil
}
