// Package latency is the freshness half of the ops plane: where the
// metrics registry counts *how much* work the pipeline did, this
// package measures *how stale* its answers are. It tracks two related
// signals on the injected clock:
//
//   - Per-stage latency histograms (latency_stage_seconds{stage=...}):
//     the line path is split at its hand-off points — intake admission
//     to bus publish, bus publish to partition operator pickup, parse,
//     sequence detection, and anomaly sink — so an operator can see
//     *where* time goes, not just that end-to-end latency grew.
//   - Freshness watermarks: per partition and per tenant, the newest
//     event-time and processing-time stamp that has fully cleared the
//     detector. The lag *age* (now − watermark) is republished as a
//     gauge at every micro-batch barrier, so a partition that silently
//     stops making progress shows monotonically growing lag instead of
//     a frozen throughput counter.
//
// Everything on the steady-state path is allocation-free: histogram
// handles and partition cells are resolved at construction, tenant
// cells once per tenant (cached by the caller), and watermark updates
// are single-writer atomic load/compare/store — the same contract the
// zero-alloc hot path (PR 5) enforces with AllocsPerRun budgets.
//
// The tracker also owns the end-to-end SLO burn counter
// (latency_slo_breach_total): CheckSLO increments it for every line
// whose e2e latency exceeded the configured threshold (loglens
// -slo-e2e-ms), giving alerting a counter to rate() instead of a
// percentile to threshold.
package latency

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"loglens/internal/clock"
	"loglens/internal/metrics"
)

// Stage identifies one segment of the line path. Stages are recorded as
// deltas between adjacent hand-off points, so summing stage histograms
// approximates the e2e distribution (minus queueing between stages that
// no stamp brackets).
type Stage int

const (
	// StageIntake: network admission (listener enqueue) → bus publish.
	// Measures the intake queue wait plus pump scheduling.
	StageIntake Stage = iota
	// StageDeliver: bus publish → partition operator pickup. Measures
	// log-manager polling, forwarding, and micro-batch collection — the
	// batching delay an operator tunes with -batch-interval.
	StageDeliver
	// StageParse: operator pickup → parse complete (template matched or
	// line declared unparsed).
	StageParse
	// StageDetect: parse complete → sequence/volume detection complete.
	StageDetect
	// StageSink: line arrival → its anomaly verdict landed in the sink.
	// Only anomalous lines reach this stage; it measures verdict
	// staleness, the paper's real-time claim in one number.
	StageSink
	numStages
)

// stageNames index Stage → label value.
var stageNames = [numStages]string{"intake", "deliver", "parse", "detect", "sink"}

// Name returns the stage's metric label value.
func (s Stage) Name() string { return stageNames[s] }

// Stages lists every stage label in pipeline order, for dashboards that
// want a stable iteration order.
func Stages() []string { return stageNames[:] }

// StageBuckets are the histogram bounds for per-stage deltas: finer than
// metrics.DefBuckets at the microsecond end (a parse stage runs in
// single-digit microseconds) while still reaching multi-second tails
// for a stalled partition.
var StageBuckets = []float64{
	0.000005, 0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// Cell holds the freshness watermarks for one partition or tenant: the
// newest event-time and processing-time (arrival) stamps that have
// cleared the detector, plus the lag-age gauges republished at every
// barrier. Watermarks only move forward (max semantics), so late or
// reordered lines never make a partition look fresher than it is.
//
// Partition cells are updated by exactly one worker goroutine; tenant
// cells may be shared when a tenant's sources hash to different
// partitions, so Note uses atomic loads and stores (a lost race between
// two near-equal maxima is harmless — both are valid watermarks).
type Cell struct {
	event atomic.Int64 // newest event-time stamp, unixnanos (0 = no data)
	proc  atomic.Int64 // newest processing-time stamp, unixnanos (0 = no data)

	eventLag *metrics.Gauge
	procLag  *metrics.Gauge

	// Pad to a cache line so adjacent partition cells in the tracker's
	// slice don't false-share under per-partition worker updates.
	_ [32]byte
}

// Note advances the cell's watermarks to the given stamps if they are
// newer. Allocation-free; called once per line on the hot path.
func (c *Cell) Note(eventNanos, procNanos int64) {
	if c == nil {
		return
	}
	if eventNanos > c.event.Load() {
		c.event.Store(eventNanos)
	}
	if procNanos > c.proc.Load() {
		c.proc.Store(procNanos)
	}
}

// Tracker is the pipeline-wide latency/freshness instrument. A nil
// *Tracker is a valid disabled tracker: every method no-ops, so callers
// hold a plain pointer and pay one nil check when the latency plane is
// off (core.Config.DisableLatency).
type Tracker struct {
	clk      clock.Clock
	sloNanos int64

	stages   [numStages]*metrics.Histogram
	breaches *metrics.Counter

	// ingest is the admission watermark: the newest bus-publish stamp
	// the log manager has forwarded, regardless of whether the line has
	// cleared the detector yet. The gap between ingest and the partition
	// proc watermarks is work in flight.
	ingest atomic.Int64

	parts []Cell

	mu      sync.Mutex
	tenants map[string]*Cell

	reg *metrics.Registry
}

// New builds a tracker on reg with one watermark cell per partition.
// slo is the end-to-end latency threshold for latency_slo_breach_total;
// zero disables breach counting but keeps the histograms.
func New(reg *metrics.Registry, clk clock.Clock, partitions int, slo time.Duration) *Tracker {
	if clk == nil {
		clk = clock.New()
	}
	if partitions <= 0 {
		partitions = 1
	}
	t := &Tracker{
		clk:      clk,
		sloNanos: int64(slo),
		breaches: reg.Counter("latency_slo_breach_total"),
		parts:    make([]Cell, partitions),
		tenants:  make(map[string]*Cell),
		reg:      reg,
	}
	for i := range t.stages {
		t.stages[i] = reg.Histogram("latency_stage_seconds", StageBuckets, "stage", stageNames[i])
	}
	for i := range t.parts {
		p := strconv.Itoa(i)
		t.parts[i].eventLag = reg.Gauge("freshness_event_lag_ms", "partition", p)
		t.parts[i].procLag = reg.Gauge("freshness_proc_lag_ms", "partition", p)
	}
	return t
}

// Observe records one stage delta. Negative deltas (clock skew between
// stamp points cannot happen on one injected clock, but belt and
// braces) clamp to zero. Allocation-free.
func (t *Tracker) Observe(s Stage, d time.Duration) {
	if t == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	t.stages[s].Observe(d.Seconds())
}

// CheckSLO counts an SLO breach if the end-to-end latency exceeded the
// configured threshold. Allocation-free.
func (t *Tracker) CheckSLO(e2e time.Duration) {
	if t == nil || t.sloNanos <= 0 {
		return
	}
	if int64(e2e) > t.sloNanos {
		t.breaches.Inc()
	}
}

// SLO returns the configured end-to-end threshold (0 = disabled).
func (t *Tracker) SLO() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.sloNanos)
}

// Partition returns partition i's watermark cell. The caller indexes
// with the stream context's partition id, which is always in range.
func (t *Tracker) Partition(i int) *Cell {
	if t == nil {
		return nil
	}
	return &t.parts[i]
}

// Tenant resolves (registering if needed) the named tenant's watermark
// cell. Callers cache the returned pointer in per-source state so the
// hot path never takes the tracker mutex.
func (t *Tracker) Tenant(name string) *Cell {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.tenants[name]
	if !ok {
		c = &Cell{
			eventLag: t.reg.Gauge("freshness_event_lag_ms", "tenant", name),
			procLag:  t.reg.Gauge("freshness_proc_lag_ms", "tenant", name),
		}
		t.tenants[name] = c
	}
	return c
}

// NoteIngest advances the admission watermark. Called by the log
// manager with the newest arrival stamp of each forwarded poll batch.
func (t *Tracker) NoteIngest(arrival time.Time) {
	if t == nil {
		return
	}
	n := arrival.UnixNano()
	if n > t.ingest.Load() {
		t.ingest.Store(n)
	}
}

// IngestWatermark returns the admission watermark (zero time = no data).
func (t *Tracker) IngestWatermark() time.Time {
	if t == nil {
		return time.Time{}
	}
	return stampTime(t.ingest.Load())
}

// Refresh recomputes every lag-age gauge from the current clock. The
// stream engine calls it at every micro-batch barrier — each partition
// worker's own, including empty ones, serialized by the engine's barrier
// lock — so lag ages keep growing while a partition is idle or stuck
// instead of freezing at their last value. Allocation-free for a fixed
// tenant set.
func (t *Tracker) Refresh() {
	if t == nil {
		return
	}
	now := t.clk.Now().UnixNano()
	for i := range t.parts {
		t.parts[i].refresh(now)
	}
	t.mu.Lock()
	for _, c := range t.tenants {
		c.refresh(now)
	}
	t.mu.Unlock()
}

// refresh republishes one cell's lag gauges. A cell that has seen no
// data reports -1, distinguishing "never produced" from "fresh".
func (c *Cell) refresh(nowNanos int64) {
	c.eventLag.Set(lagMillis(nowNanos, c.event.Load()))
	c.procLag.Set(lagMillis(nowNanos, c.proc.Load()))
}

// lagMillis converts a watermark to a lag age in whole milliseconds,
// clamped at zero; -1 means no watermark yet.
func lagMillis(nowNanos, wmNanos int64) int64 {
	if wmNanos == 0 {
		return -1
	}
	ms := (nowNanos - wmNanos) / int64(time.Millisecond)
	if ms < 0 {
		return 0
	}
	return ms
}

// stampTime converts a unixnano watermark back to a time.Time,
// preserving the zero value.
func stampTime(n int64) time.Time {
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// PartitionWatermark is one row of the watermark table surfaced on
// GET /api/latency.
type PartitionWatermark struct {
	Partition  int       `json:"partition"`
	EventTime  time.Time `json:"eventTime"`
	ProcTime   time.Time `json:"procTime"`
	EventLagMs int64     `json:"eventLagMs"`
	ProcLagMs  int64     `json:"procLagMs"`
}

// TenantWatermark is the per-tenant analogue of PartitionWatermark.
type TenantWatermark struct {
	Tenant     string    `json:"tenant"`
	EventTime  time.Time `json:"eventTime"`
	ProcTime   time.Time `json:"procTime"`
	EventLagMs int64     `json:"eventLagMs"`
	ProcLagMs  int64     `json:"procLagMs"`
}

// Watermarks snapshots the watermark table with lag ages computed
// against the clock now — fresher than the barrier-cadence gauges, for
// the dashboard endpoint. Tenants are sorted by name.
func (t *Tracker) Watermarks() ([]PartitionWatermark, []TenantWatermark) {
	if t == nil {
		return nil, nil
	}
	now := t.clk.Now().UnixNano()
	parts := make([]PartitionWatermark, len(t.parts))
	for i := range t.parts {
		ev, pr := t.parts[i].event.Load(), t.parts[i].proc.Load()
		parts[i] = PartitionWatermark{
			Partition:  i,
			EventTime:  stampTime(ev),
			ProcTime:   stampTime(pr),
			EventLagMs: lagMillis(now, ev),
			ProcLagMs:  lagMillis(now, pr),
		}
	}
	t.mu.Lock()
	names := make([]string, 0, len(t.tenants))
	for name := range t.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	tenants := make([]TenantWatermark, 0, len(names))
	for _, name := range names {
		c := t.tenants[name]
		ev, pr := c.event.Load(), c.proc.Load()
		tenants = append(tenants, TenantWatermark{
			Tenant:     name,
			EventTime:  stampTime(ev),
			ProcTime:   stampTime(pr),
			EventLagMs: lagMillis(now, ev),
			ProcLagMs:  lagMillis(now, pr),
		})
	}
	t.mu.Unlock()
	return parts, tenants
}

// Breaches returns the SLO burn counter's current value.
func (t *Tracker) Breaches() uint64 {
	if t == nil {
		return 0
	}
	return t.breaches.Value()
}
