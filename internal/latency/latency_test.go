package latency

import (
	"testing"
	"time"

	"loglens/internal/clock"
	"loglens/internal/metrics"
)

func TestStageObserveAndQuantile(t *testing.T) {
	reg := metrics.NewRegistry()
	clk := clock.NewFake()
	tr := New(reg, clk, 2, 0)

	for i := 0; i < 90; i++ {
		tr.Observe(StageParse, 3*time.Microsecond) // bucket (2.5e-6, 5e-6]
	}
	for i := 0; i < 10; i++ {
		tr.Observe(StageParse, 20*time.Millisecond) // (0.01, 0.025]
	}
	snap := reg.Snapshot()
	hv, ok := snap.Histogram("latency_stage_seconds", "stage", "parse")
	if !ok || hv.Count != 100 {
		t.Fatalf("parse histogram ok=%v count=%d", ok, hv.Count)
	}
	p50 := hv.Quantile(0.50)
	if p50 <= 0 || p50 > 0.000005 {
		t.Errorf("p50 = %v, want within first bucket (0, 5e-6]", p50)
	}
	p99 := hv.Quantile(0.99)
	if p99 <= 0.01 || p99 > 0.025 {
		t.Errorf("p99 = %v, want within (0.01, 0.025]", p99)
	}
	// Negative deltas clamp to zero rather than corrupting the sum.
	tr.Observe(StageDetect, -time.Second)
	hv, _ = snap2(reg, "detect")
	if hv.Count != 1 || hv.Sum != 0 {
		t.Errorf("negative delta: count=%d sum=%v, want 1/0", hv.Count, hv.Sum)
	}
}

func snap2(reg *metrics.Registry, stage string) (metrics.HistogramValue, bool) {
	return reg.Snapshot().Histogram("latency_stage_seconds", "stage", stage)
}

func TestSLOBreachCounting(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := New(reg, clock.NewFake(), 1, 50*time.Millisecond)
	tr.CheckSLO(49 * time.Millisecond)
	tr.CheckSLO(50 * time.Millisecond) // at threshold: not a breach
	tr.CheckSLO(51 * time.Millisecond)
	tr.CheckSLO(time.Second)
	if got := tr.Breaches(); got != 2 {
		t.Errorf("breaches = %d, want 2", got)
	}
	if got := reg.Snapshot().Counter("latency_slo_breach_total"); got != 2 {
		t.Errorf("latency_slo_breach_total = %d, want 2", got)
	}
	if tr.SLO() != 50*time.Millisecond {
		t.Errorf("SLO() = %v", tr.SLO())
	}

	// Zero threshold disables breach counting entirely.
	off := New(metrics.NewRegistry(), clock.NewFake(), 1, 0)
	off.CheckSLO(time.Hour)
	if off.Breaches() != 0 {
		t.Errorf("disabled SLO counted a breach")
	}
}

func TestWatermarksAndRefresh(t *testing.T) {
	reg := metrics.NewRegistry()
	clk := clock.NewFake()
	t0 := clk.Now()
	tr := New(reg, clk, 2, 0)

	// No data: gauges report -1, table rows carry zero times.
	tr.Refresh()
	snap := reg.Snapshot()
	if got := snap.Gauge("freshness_proc_lag_ms", "partition", "0"); got != -1 {
		t.Errorf("empty partition lag = %d, want -1", got)
	}
	parts, tenants := tr.Watermarks()
	if len(parts) != 2 || len(tenants) != 0 {
		t.Fatalf("watermarks: %d parts %d tenants", len(parts), len(tenants))
	}
	if !parts[0].EventTime.IsZero() || parts[0].EventLagMs != -1 {
		t.Errorf("empty partition row = %+v", parts[0])
	}

	// Note watermarks on partition 0 and tenant alpha; partition 1 stays
	// empty.
	ev := t0.Add(10 * time.Millisecond)
	pr := t0.Add(30 * time.Millisecond)
	tr.Partition(0).Note(ev.UnixNano(), pr.UnixNano())
	tr.Tenant("alpha").Note(ev.UnixNano(), pr.UnixNano())

	// Watermarks only move forward: an older stamp must not regress them.
	tr.Partition(0).Note(t0.UnixNano(), t0.UnixNano())

	clk.Advance(100 * time.Millisecond) // now = t0+100ms
	tr.Refresh()
	snap = reg.Snapshot()
	if got := snap.Gauge("freshness_event_lag_ms", "partition", "0"); got != 90 {
		t.Errorf("event lag = %d, want 90", got)
	}
	if got := snap.Gauge("freshness_proc_lag_ms", "partition", "0"); got != 70 {
		t.Errorf("proc lag = %d, want 70", got)
	}
	if got := snap.Gauge("freshness_proc_lag_ms", "tenant", "alpha"); got != 70 {
		t.Errorf("tenant proc lag = %d, want 70", got)
	}
	if got := snap.Gauge("freshness_proc_lag_ms", "partition", "1"); got != -1 {
		t.Errorf("idle partition lag = %d, want -1", got)
	}

	parts, tenants = tr.Watermarks()
	if parts[0].ProcLagMs != 70 || !parts[0].ProcTime.Equal(pr) {
		t.Errorf("partition row = %+v", parts[0])
	}
	if len(tenants) != 1 || tenants[0].Tenant != "alpha" || tenants[0].EventLagMs != 90 {
		t.Errorf("tenant rows = %+v", tenants)
	}

	// Tenant resolves to the same cell on every call.
	if tr.Tenant("alpha") != tr.Tenant("alpha") {
		t.Errorf("Tenant not cached")
	}
}

func TestIngestWatermark(t *testing.T) {
	clk := clock.NewFake()
	t0 := clk.Now()
	tr := New(metrics.NewRegistry(), clk, 1, 0)
	if !tr.IngestWatermark().IsZero() {
		t.Errorf("fresh tracker has ingest watermark")
	}
	tr.NoteIngest(t0.Add(5 * time.Millisecond))
	tr.NoteIngest(t0) // older: must not regress
	if got := tr.IngestWatermark(); !got.Equal(t0.Add(5 * time.Millisecond)) {
		t.Errorf("ingest watermark = %v", got)
	}
}

// TestNilTrackerIsDisabled pins the disabled contract: every method on
// a nil *Tracker (and nil *Cell) is a safe no-op, so wiring code holds
// plain pointers without nil checks.
func TestNilTrackerIsDisabled(t *testing.T) {
	var tr *Tracker
	tr.Observe(StageParse, time.Second)
	tr.CheckSLO(time.Hour)
	tr.NoteIngest(time.Now())
	tr.Refresh()
	tr.Partition(0).Note(1, 1)
	tr.Tenant("x").Note(1, 1)
	if tr.Breaches() != 0 || tr.SLO() != 0 || !tr.IngestWatermark().IsZero() {
		t.Errorf("nil tracker leaked state")
	}
	if p, tn := tr.Watermarks(); p != nil || tn != nil {
		t.Errorf("nil tracker returned watermarks")
	}
}

// TestLatencyAllocBudgets extends the PR 5 AllocsPerRun budgets to the
// latency plane: stage observation, SLO check, watermark notes, and the
// barrier refresh must all be allocation-free once tenants are
// resolved.
func TestLatencyAllocBudgets(t *testing.T) {
	reg := metrics.NewRegistry()
	clk := clock.NewFake()
	tr := New(reg, clk, 4, 100*time.Millisecond)
	cell := tr.Tenant("alpha")
	now := clk.Now().UnixNano()

	budgets := []struct {
		name string
		max  float64
		fn   func()
	}{
		{"Observe", 0, func() { tr.Observe(StageDeliver, 42*time.Microsecond) }},
		{"CheckSLO", 0, func() { tr.CheckSLO(time.Second) }},
		{"PartitionNote", 0, func() { tr.Partition(2).Note(now, now) }},
		{"TenantNote", 0, func() { cell.Note(now, now) }},
		{"NoteIngest", 0, func() { tr.NoteIngest(clk.Now()) }},
		{"Refresh", 0, tr.Refresh},
	}
	for _, b := range budgets {
		if got := testing.AllocsPerRun(200, b.fn); got > b.max {
			t.Errorf("%s allocates %.1f/op, budget %.0f", b.name, got, b.max)
		}
	}
}
