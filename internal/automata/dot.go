package automata

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the automaton as a Graphviz digraph in the style of the
// paper's Figure 3: one node per state annotated with its occurrence
// bounds, edges along the learned pattern-sequence key, and a label
// carrying the event-duration rule.
func (a *Automaton) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph automaton_%d {\n", a.ID)
	fmt.Fprintf(&b, "  rankdir=LR;\n")
	fmt.Fprintf(&b, "  label=\"automaton %d: duration [%s, %s], %d training traces\";\n",
		a.ID, a.MinDuration, a.MaxDuration, a.Traces)
	fmt.Fprintf(&b, "  start [shape=point];\n")
	fmt.Fprintf(&b, "  end [shape=doublecircle, label=\"end\"];\n")

	for _, s := range a.States {
		shape := "circle"
		if s.PatternID == a.BeginPattern || s.PatternID == a.EndPattern {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  p%d [shape=%s, label=\"pattern %d\\nocc [%d,%d]\"];\n",
			s.PatternID, shape, s.PatternID, s.MinOcc, s.MaxOcc)
	}

	// Edges along the collapsed sequence key; a state whose MaxOcc
	// exceeds 1 gets a self-loop (repeats collapse in the key).
	seq := a.sequence()
	if len(seq) > 0 {
		fmt.Fprintf(&b, "  start -> p%d;\n", seq[0])
		for i := 1; i < len(seq); i++ {
			fmt.Fprintf(&b, "  p%d -> p%d;\n", seq[i-1], seq[i])
		}
		fmt.Fprintf(&b, "  p%d -> end;\n", seq[len(seq)-1])
	}
	for _, s := range a.States {
		if s.MaxOcc > 1 {
			fmt.Fprintf(&b, "  p%d -> p%d [style=dashed, label=\"x%d\"];\n", s.PatternID, s.PatternID, s.MaxOcc)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// sequence parses the collapsed key back into pattern IDs.
func (a *Automaton) sequence() []int {
	if a.Key == "" {
		return nil
	}
	parts := strings.Split(a.Key, ">")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		var id int
		if _, err := fmt.Sscanf(p, "%d", &id); err == nil {
			out = append(out, id)
		}
	}
	return out
}

// DOT renders every automaton of the model into one digraph document
// (separate graphs concatenated, as Graphviz accepts).
func (m *Model) DOT() string {
	autos := append([]*Automaton(nil), m.Automata...)
	sort.Slice(autos, func(i, j int) bool { return autos[i].ID < autos[j].ID })
	var b strings.Builder
	for _, a := range autos {
		b.WriteString(a.DOT())
	}
	return b.String()
}
