// Package automata implements the event-automata model of the stateful
// log-sequence anomaly detector (§IV-A2). An automaton captures one event
// type's normal behaviour: its begin and end states, the min/max
// occurrence of every intermediate state, and the min/max duration between
// begin and end (Figure 3). The model is learned by replaying training
// traces grouped by the automatically discovered event ID.
package automata

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"loglens/internal/idfield"
	"loglens/internal/logtypes"
)

// State is one automaton state: the log pattern it corresponds to ("each
// state corresponds to a log in that event") with its learned occurrence
// bounds.
type State struct {
	// PatternID is the log pattern backing this state.
	PatternID int `json:"pattern"`
	// MinOcc and MaxOcc bound how many times the state occurs in one
	// event.
	MinOcc int `json:"minOcc"`
	MaxOcc int `json:"maxOcc"`
}

// Automaton models one event type.
type Automaton struct {
	// ID identifies the automaton within its model.
	ID int `json:"id"`
	// BeginPattern and EndPattern are the begin and end states' pattern
	// IDs.
	BeginPattern int `json:"begin"`
	EndPattern   int `json:"end"`
	// States holds the occurrence rules of every state, begin and end
	// included, keyed in pattern order.
	States []State `json:"states"`
	// MinDuration and MaxDuration bound the begin-to-end span.
	MinDuration time.Duration `json:"minDurationNanos"`
	MaxDuration time.Duration `json:"maxDurationNanos"`
	// Key is the collapsed pattern-sequence signature the automaton was
	// merged under (consecutive repeats collapse, so retries of one
	// action stay one state).
	Key string `json:"key"`
	// Traces counts the training traces merged into this automaton.
	Traces int `json:"traces"`
}

// State returns the occurrence rule for a pattern and whether the pattern
// is a state of this automaton.
func (a *Automaton) State(patternID int) (State, bool) {
	for _, s := range a.States {
		if s.PatternID == patternID {
			return s, true
		}
	}
	return State{}, false
}

// Model is the stateful detector's model: the automata plus the ID-field
// mapping used to extract event IDs from parsed logs.
type Model struct {
	// Automata holds every learned automaton, ordered by ID.
	Automata []*Automaton `json:"automata"`
	// IDFields maps pattern ID to the field carrying the event ID.
	IDFields map[int]string `json:"idFields"`
}

// AutomataFor returns the automata that contain the pattern as a state.
func (m *Model) AutomataFor(patternID int) []*Automaton {
	var out []*Automaton
	for _, a := range m.Automata {
		if _, ok := a.State(patternID); ok {
			out = append(out, a)
		}
	}
	return out
}

// Get returns the automaton with the given ID.
func (m *Model) Get(id int) (*Automaton, bool) {
	for _, a := range m.Automata {
		if a.ID == id {
			return a, true
		}
	}
	return nil, false
}

// Delete removes the automaton with the given ID (the model-edit operation
// exercised in Table V). It reports whether an automaton was removed.
func (m *Model) Delete(id int) bool {
	for i, a := range m.Automata {
		if a.ID == id {
			m.Automata = append(m.Automata[:i], m.Automata[i+1:]...)
			return true
		}
	}
	return false
}

// Clone returns a deep copy, so edited models never disturb running
// detectors holding the original.
func (m *Model) Clone() *Model {
	c := &Model{IDFields: make(map[int]string, len(m.IDFields))}
	for k, v := range m.IDFields {
		c.IDFields[k] = v
	}
	for _, a := range m.Automata {
		b := *a
		b.States = append([]State(nil), a.States...)
		c.Automata = append(c.Automata, &b)
	}
	return c
}

// EventID extracts the event ID of a parsed log under this model.
func (m *Model) EventID(l *logtypes.ParsedLog) (string, bool) {
	field, ok := m.IDFields[l.PatternID]
	if !ok {
		return "", false
	}
	return l.FieldValue(field)
}

// MarshalJSON/UnmarshalJSON use an int-keyed map encoding for IDFields.
func (m *Model) MarshalJSON() ([]byte, error) {
	type alias struct {
		Automata []*Automaton      `json:"automata"`
		IDFields map[string]string `json:"idFields"`
	}
	a := alias{Automata: m.Automata, IDFields: make(map[string]string, len(m.IDFields))}
	for k, v := range m.IDFields {
		a.IDFields[strconv.Itoa(k)] = v
	}
	return json.Marshal(a)
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (m *Model) UnmarshalJSON(data []byte) error {
	type alias struct {
		Automata []*Automaton      `json:"automata"`
		IDFields map[string]string `json:"idFields"`
	}
	var a alias
	if err := json.Unmarshal(data, &a); err != nil {
		return fmt.Errorf("automata: unmarshal model: %w", err)
	}
	m.Automata = a.Automata
	m.IDFields = make(map[int]string, len(a.IDFields))
	for k, v := range a.IDFields {
		id, err := strconv.Atoi(k)
		if err != nil {
			return fmt.Errorf("automata: unmarshal model: bad pattern id %q", k)
		}
		m.IDFields[id] = v
	}
	return nil
}

// Learn builds the automata model from a training corpus (§IV-A2). Logs
// are grouped into traces by discovered event ID, each trace is reduced to
// its collapsed pattern-sequence key, and traces sharing a key merge into
// one automaton whose rules are the min/max of the observed statistics.
func Learn(logs []*logtypes.ParsedLog, disc idfield.Discovery) *Model {
	type traceInfo struct {
		key      string
		begin    int
		end      int
		counts   map[int]int
		duration time.Duration
	}

	// Group logs by event ID, ordered by log time (arrival sequence
	// breaks ties).
	groups := make(map[string][]*logtypes.ParsedLog)
	var order []string
	for _, l := range logs {
		id, ok := disc.EventID(l)
		if !ok || id == "" {
			continue
		}
		if _, seen := groups[id]; !seen {
			order = append(order, id)
		}
		groups[id] = append(groups[id], l)
	}

	traces := make([]traceInfo, 0, len(groups))
	for _, id := range order {
		g := groups[id]
		sort.SliceStable(g, func(i, j int) bool {
			ti, tj := g[i].EventTime(), g[j].EventTime()
			if !ti.Equal(tj) {
				return ti.Before(tj)
			}
			return g[i].Seq < g[j].Seq
		})
		tr := traceInfo{counts: make(map[int]int)}
		var keyParts []string
		prev := -1
		for _, l := range g {
			tr.counts[l.PatternID]++
			if l.PatternID != prev {
				keyParts = append(keyParts, strconv.Itoa(l.PatternID))
				prev = l.PatternID
			}
		}
		tr.key = strings.Join(keyParts, ">")
		tr.begin = g[0].PatternID
		tr.end = g[len(g)-1].PatternID
		tr.duration = g[len(g)-1].EventTime().Sub(g[0].EventTime())
		traces = append(traces, tr)
	}

	// Merge traces by key.
	m := &Model{IDFields: disc.FieldOf}
	if m.IDFields == nil {
		m.IDFields = map[int]string{}
	}
	byKey := make(map[string]*Automaton)
	occ := make(map[string]map[int][2]int)   // key -> pattern -> [min,max]
	presence := make(map[string]map[int]int) // key -> pattern -> traces containing it
	for _, tr := range traces {
		a, ok := byKey[tr.key]
		if !ok {
			a = &Automaton{
				ID:           len(m.Automata) + 1,
				BeginPattern: tr.begin,
				EndPattern:   tr.end,
				MinDuration:  tr.duration,
				MaxDuration:  tr.duration,
				Key:          tr.key,
			}
			byKey[tr.key] = a
			occ[tr.key] = make(map[int][2]int)
			presence[tr.key] = make(map[int]int)
			m.Automata = append(m.Automata, a)
		}
		a.Traces++
		if tr.duration < a.MinDuration {
			a.MinDuration = tr.duration
		}
		if tr.duration > a.MaxDuration {
			a.MaxDuration = tr.duration
		}
		bounds := occ[tr.key]
		for pid, n := range tr.counts {
			presence[tr.key][pid]++
			b, seen := bounds[pid]
			if !seen {
				bounds[pid] = [2]int{n, n}
				continue
			}
			if n < b[0] {
				b[0] = n
			}
			if n > b[1] {
				b[1] = n
			}
			bounds[pid] = b
		}
	}

	for key, a := range byKey {
		// A state absent from some merged trace gets MinOcc 0.
		bounds := occ[key]
		pids := make([]int, 0, len(bounds))
		for pid := range bounds {
			pids = append(pids, pid)
		}
		sort.Ints(pids)
		for _, pid := range pids {
			b := bounds[pid]
			minOcc := b[0]
			// A state absent from some trace merged under this
			// key is optional.
			if presence[key][pid] < a.Traces {
				minOcc = 0
			}
			a.States = append(a.States, State{PatternID: pid, MinOcc: minOcc, MaxOcc: b[1]})
		}
	}
	return m
}
