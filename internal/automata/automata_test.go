package automata

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"loglens/internal/idfield"
	"loglens/internal/logtypes"
)

var t0 = time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)

// trace builds the parsed logs of one event: pattern IDs in order, one
// second apart, starting at offset seconds after t0.
func trace(eventID string, offset int, patterns ...int) []*logtypes.ParsedLog {
	out := make([]*logtypes.ParsedLog, len(patterns))
	for i, pid := range patterns {
		out[i] = &logtypes.ParsedLog{
			Log:          logtypes.Log{Source: "s", Seq: uint64(offset*100 + i)},
			PatternID:    pid,
			Fields:       []logtypes.Field{{Name: "id", Value: eventID}},
			Timestamp:    t0.Add(time.Duration(offset+i) * time.Second),
			HasTimestamp: true,
		}
	}
	return out
}

func disc(patterns ...int) idfield.Discovery {
	d := idfield.Discovery{FieldOf: map[int]string{}}
	for _, p := range patterns {
		d.FieldOf[p] = "id"
	}
	return d
}

func TestLearnSingleAutomaton(t *testing.T) {
	var logs []*logtypes.ParsedLog
	logs = append(logs, trace("e1", 0, 1, 2, 3)...)
	logs = append(logs, trace("e2", 10, 1, 2, 2, 3)...)
	logs = append(logs, trace("e3", 20, 1, 2, 3)...)

	m := Learn(logs, disc(1, 2, 3))
	if len(m.Automata) != 1 {
		t.Fatalf("automata = %d, want 1", len(m.Automata))
	}
	a := m.Automata[0]
	if a.BeginPattern != 1 || a.EndPattern != 3 {
		t.Errorf("begin/end = %d/%d", a.BeginPattern, a.EndPattern)
	}
	if a.Key != "1>2>3" {
		t.Errorf("key = %q (consecutive repeats must collapse)", a.Key)
	}
	if a.Traces != 3 {
		t.Errorf("traces = %d", a.Traces)
	}
	s2, ok := a.State(2)
	if !ok || s2.MinOcc != 1 || s2.MaxOcc != 2 {
		t.Errorf("state 2 = %+v, want MinOcc 1 MaxOcc 2", s2)
	}
	// Durations: 2s (1,2,3) and 3s (1,2,2,3).
	if a.MinDuration != 2*time.Second || a.MaxDuration != 3*time.Second {
		t.Errorf("duration bounds = [%v,%v]", a.MinDuration, a.MaxDuration)
	}
}

func TestLearnMultipleAutomata(t *testing.T) {
	var logs []*logtypes.ParsedLog
	logs = append(logs, trace("a1", 0, 1, 2, 3)...)
	logs = append(logs, trace("b1", 5, 4, 5)...)
	logs = append(logs, trace("a2", 10, 1, 2, 3)...)
	logs = append(logs, trace("b2", 15, 4, 5)...)

	m := Learn(logs, disc(1, 2, 3, 4, 5))
	if len(m.Automata) != 2 {
		t.Fatalf("automata = %d, want 2", len(m.Automata))
	}
	if got := m.AutomataFor(2); len(got) != 1 || got[0].Key != "1>2>3" {
		t.Errorf("AutomataFor(2) = %v", got)
	}
	if got := m.AutomataFor(5); len(got) != 1 || got[0].Key != "4>5" {
		t.Errorf("AutomataFor(5) = %v", got)
	}
	if got := m.AutomataFor(99); got != nil {
		t.Errorf("AutomataFor(99) = %v", got)
	}
}

func TestLearnSkipsUntrackedPatterns(t *testing.T) {
	var logs []*logtypes.ParsedLog
	logs = append(logs, trace("e1", 0, 1, 2)...)
	// Pattern 9 has no ID field: its logs are ignored.
	logs = append(logs, &logtypes.ParsedLog{PatternID: 9, Fields: []logtypes.Field{{Name: "x", Value: "v"}}})
	m := Learn(logs, disc(1, 2))
	if len(m.Automata) != 1 {
		t.Fatalf("automata = %d", len(m.Automata))
	}
	if _, ok := m.Automata[0].State(9); ok {
		t.Error("untracked pattern leaked into automaton")
	}
}

func TestDelete(t *testing.T) {
	var logs []*logtypes.ParsedLog
	logs = append(logs, trace("a1", 0, 1, 2)...)
	logs = append(logs, trace("b1", 5, 3, 4)...)
	m := Learn(logs, disc(1, 2, 3, 4))
	if len(m.Automata) != 2 {
		t.Fatalf("automata = %d", len(m.Automata))
	}
	id := m.Automata[0].ID
	if !m.Delete(id) {
		t.Fatal("Delete failed")
	}
	if m.Delete(id) {
		t.Fatal("double Delete must fail")
	}
	if len(m.Automata) != 1 {
		t.Errorf("automata = %d after delete", len(m.Automata))
	}
	if _, ok := m.Get(id); ok {
		t.Error("Get must miss after delete")
	}
}

func TestCloneIsolation(t *testing.T) {
	m := Learn(trace("e1", 0, 1, 2), disc(1, 2))
	c := m.Clone()
	c.Delete(c.Automata[0].ID)
	c.IDFields[99] = "zzz"
	if len(m.Automata) != 1 {
		t.Error("Clone shares automata slice")
	}
	if _, ok := m.IDFields[99]; ok {
		t.Error("Clone shares IDFields map")
	}
}

func TestModelJSONRoundTrip(t *testing.T) {
	var logs []*logtypes.ParsedLog
	logs = append(logs, trace("e1", 0, 1, 2, 3)...)
	logs = append(logs, trace("e2", 10, 1, 2, 2, 3)...)
	m := Learn(logs, disc(1, 2, 3))

	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var m2 Model
	if err := json.Unmarshal(data, &m2); err != nil {
		t.Fatal(err)
	}
	if len(m2.Automata) != 1 || m2.Automata[0].Key != "1>2>3" {
		t.Fatalf("round trip: %+v", m2.Automata)
	}
	if m2.IDFields[2] != "id" {
		t.Errorf("IDFields lost: %v", m2.IDFields)
	}
	if m2.Automata[0].MaxDuration != m.Automata[0].MaxDuration {
		t.Errorf("durations lost")
	}
}

func TestEventIDExtraction(t *testing.T) {
	m := Learn(trace("e1", 0, 1, 2), disc(1, 2))
	l := trace("e9", 0, 1)[0]
	id, ok := m.EventID(l)
	if !ok || id != "e9" {
		t.Errorf("EventID = %q/%v", id, ok)
	}
}

func TestLearnOrdersByTime(t *testing.T) {
	// Logs delivered out of order must still form the right key.
	logs := trace("e1", 0, 1, 2, 3)
	shuffled := []*logtypes.ParsedLog{logs[2], logs[0], logs[1]}
	m := Learn(shuffled, disc(1, 2, 3))
	if m.Automata[0].Key != "1>2>3" {
		t.Errorf("key = %q, want time-ordered 1>2>3", m.Automata[0].Key)
	}
}

func TestDOTExport(t *testing.T) {
	var logs []*logtypes.ParsedLog
	logs = append(logs, trace("e1", 0, 1, 2, 3)...)
	logs = append(logs, trace("e2", 10, 1, 2, 2, 3)...)
	m := Learn(logs, disc(1, 2, 3))
	dot := m.DOT()
	for _, want := range []string{
		"digraph automaton_1",
		"start -> p1",
		"p1 -> p2",
		"p2 -> p3",
		"p3 -> end",
		`p2 -> p2 [style=dashed, label="x2"]`, // the repeatable state
		"occ [1,2]",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}
