package intake

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"loglens/internal/obs"
	"loglens/internal/testutil"
)

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	for _, cfg := range []Config{
		{SyslogUDP: ":0"}, {SyslogTCP: ":0"}, {HTTP: ":0"},
	} {
		if !cfg.Enabled() {
			t.Errorf("config %+v reports disabled", cfg)
		}
	}
}

func TestFrameErrorMessage(t *testing.T) {
	_, err := scanAll("9999999999 x", 0)
	if err == nil || !strings.HasPrefix(err.Error(), "intake: ") {
		t.Errorf("frame error = %v, want intake: prefix", err)
	}
}

// TestProbeLifecycle walks the intake health probe through its states:
// not started, healthy, queue nearly full (shedding imminent), stopped.
func TestProbeLifecycle(t *testing.T) {
	block := make(chan struct{})
	svc := New(Config{SyslogUDP: "127.0.0.1:0", QueueDepth: 10},
		func(string, uint64, []byte, time.Time) { <-block })

	if pr := svc.Probe(); pr.Status != obs.Degraded || !strings.Contains(pr.Detail, "not started") {
		t.Errorf("pre-start probe = %+v", pr)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	if pr := svc.Probe(); pr.Status != obs.Healthy {
		t.Errorf("started probe = %+v", pr)
	}

	// Stall the sink and fill the queue past 90%: the probe must warn
	// before sheds begin.
	conn, err := net.Dial("udp", svc.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 12; i++ {
		fmt.Fprintf(conn, "<13>queue filler %d", i)
	}
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		return svc.Stats().QueueDepth*10 >= svc.Stats().QueueCapacity*9
	}, "queue never filled")
	if pr := svc.Probe(); pr.Status != obs.Degraded || !strings.Contains(pr.Detail, "shedding imminent") {
		t.Errorf("full-queue probe = %+v", pr)
	}

	close(block)
	// Close is the abort path: a grace-expired error is its normal
	// return when lines were still in flight.
	svc.Close()
	if pr := svc.Probe(); pr.Status != obs.Degraded || !strings.Contains(pr.Detail, "stopped") {
		t.Errorf("stopped probe = %+v", pr)
	}
}
