package intake

import (
	"bufio"
	"fmt"
	"io"
)

// DefaultMaxLineBytes caps one wire frame when Config.MaxLineBytes is
// zero. A frame larger than this is an attack or a corrupt sender, not a
// log line.
const DefaultMaxLineBytes = 1 << 20

// maxOctetDigits bounds the length prefix of an octet-counted frame: 9
// digits admit frames up to ~1GB, far past any sane MaxLineBytes, while
// keeping the parse overflow-free.
const maxOctetDigits = 9

// errFrame wraps all framing violations so the listener can tell a
// protocol error (close the connection, count it) from an I/O error.
type frameError struct{ msg string }

func (e *frameError) Error() string { return "intake: " + e.msg }

// IsFrameError reports whether err is a wire-framing violation (bad octet
// count, oversized frame, truncated frame) rather than transport I/O.
func IsFrameError(err error) bool {
	_, ok := err.(*frameError)
	return ok
}

// NewFrameScanner returns a scanner over a TCP syslog stream that accepts
// both RFC 6587 transports, deciding per frame: a frame beginning with a
// digit is octet-counted ("123 <34>...payload"), anything else is
// non-transparent (newline-terminated, trailing \r stripped). Frames are
// capped at max bytes (0 = DefaultMaxLineBytes); a malformed or oversized
// frame surfaces as a frame error from Err, never a panic — the listener
// closes that connection and the rest of the accept loop never notices.
func NewFrameScanner(r io.Reader, max int) *bufio.Scanner {
	if max <= 0 {
		max = DefaultMaxLineBytes
	}
	sc := bufio.NewScanner(r)
	// The buffer must hold one max-size frame plus its length prefix.
	sc.Buffer(make([]byte, 0, 4096), max+maxOctetDigits+1)
	sc.Split(splitFrames(max))
	return sc
}

// splitFrames is the dual-transport bufio.SplitFunc described above.
func splitFrames(max int) bufio.SplitFunc {
	return func(data []byte, atEOF bool) (advance int, token []byte, err error) {
		// Skip frame separators so "msg\r\n" and keepalive newlines don't
		// produce empty frames.
		start := 0
		for start < len(data) && (data[start] == '\n' || data[start] == '\r') {
			start++
		}
		if start == len(data) {
			if atEOF {
				return len(data), nil, nil
			}
			return start, nil, nil
		}
		if c := data[start]; c >= '0' && c <= '9' {
			return splitOctetCounted(data, start, max, atEOF)
		}
		// Non-transparent framing: up to the next newline.
		for i := start; i < len(data); i++ {
			if data[i] == '\n' {
				if i-start > max {
					return 0, nil, &frameError{fmt.Sprintf("frame exceeds %d bytes", max)}
				}
				return i + 1, trimCR(data[start:i]), nil
			}
		}
		if len(data)-start > max {
			return 0, nil, &frameError{fmt.Sprintf("frame exceeds %d bytes", max)}
		}
		if atEOF {
			// Final unterminated frame: deliver what arrived.
			return len(data), trimCR(data[start:]), nil
		}
		return start, nil, nil
	}
}

// splitOctetCounted parses "NNN SP payload" starting at data[start].
func splitOctetCounted(data []byte, start, max int, atEOF bool) (int, []byte, error) {
	n := 0
	i := start
	for ; i < len(data); i++ {
		c := data[i]
		if c == ' ' {
			break
		}
		if c < '0' || c > '9' {
			return 0, nil, &frameError{fmt.Sprintf("malformed octet count %q", data[start:i+1])}
		}
		if i-start >= maxOctetDigits {
			return 0, nil, &frameError{"octet count too long"}
		}
		n = n*10 + int(c-'0')
	}
	if i == len(data) {
		if atEOF {
			return 0, nil, &frameError{"truncated octet count"}
		}
		return start, nil, nil // need more data for the count itself
	}
	if n > max {
		return 0, nil, &frameError{fmt.Sprintf("octet count %d exceeds %d-byte frame cap", n, max)}
	}
	body := i + 1
	if len(data)-body < n {
		if atEOF {
			return 0, nil, &frameError{fmt.Sprintf("truncated frame: %d of %d bytes", len(data)-body, n)}
		}
		return start, nil, nil
	}
	return body + n, data[body : body+n], nil
}

// trimCR strips one trailing carriage return (CRLF line endings).
func trimCR(b []byte) []byte {
	if len(b) > 0 && b[len(b)-1] == '\r' {
		return b[:len(b)-1]
	}
	return b
}
