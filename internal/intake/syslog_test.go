package intake

import (
	"strings"
	"testing"
	"time"
)

func TestParseSyslogRFC5424(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want Message
	}{
		{
			name: "full",
			in:   `<34>1 2003-10-11T22:14:15.003Z mymachine.example.com su 1234 ID47 - 'su root' failed for lonvick`,
			want: Message{
				Facility: 4, Severity: 2, RFC: 5424,
				Time:    time.Date(2003, 10, 11, 22, 14, 15, 3_000_000, time.UTC),
				HasTime: true, Hostname: "mymachine.example.com", App: "su",
				Msg: `'su root' failed for lonvick`,
			},
		},
		{
			name: "nil fields",
			in:   `<165>1 - - - - - - payload only`,
			want: Message{Facility: 20, Severity: 5, RFC: 5424, Msg: "payload only"},
		},
		{
			name: "structured data",
			in:   `<165>1 2003-10-11T22:14:15Z host app - - [exampleSDID@32473 iut="3" eventSource="App \] weird"] body here`,
			want: Message{
				Facility: 20, Severity: 5, RFC: 5424,
				Time:    time.Date(2003, 10, 11, 22, 14, 15, 0, time.UTC),
				HasTime: true, Hostname: "host", App: "app", Msg: "body here",
			},
		},
		{
			name: "two SD elements no msg",
			in:   `<165>1 - host app - - [a x="1"][b y="2"]`,
			want: Message{Facility: 20, Severity: 5, RFC: 5424, Hostname: "host", App: "app"},
		},
		{
			name: "BOM message",
			in:   "<165>1 - host app - - - \xEF\xBB\xBFbom body",
			want: Message{Facility: 20, Severity: 5, RFC: 5424, Hostname: "host", App: "app", Msg: "bom body"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseSyslog([]byte(tc.in))
			if err != nil {
				t.Fatalf("ParseSyslog(%q) error: %v", tc.in, err)
			}
			if got != tc.want {
				t.Errorf("ParseSyslog(%q)\n got %+v\nwant %+v", tc.in, got, tc.want)
			}
		})
	}
}

func TestParseSyslogRFC3164(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want Message
	}{
		{
			name: "canonical",
			in:   `<34>Oct 11 22:14:15 mymachine su: 'su root' failed for lonvick on /dev/pts/8`,
			want: Message{
				Facility: 4, Severity: 2, RFC: 3164,
				Time:    time.Date(0, 10, 11, 22, 14, 15, 0, time.UTC),
				HasTime: true, Hostname: "mymachine", App: "su",
				Msg: `'su root' failed for lonvick on /dev/pts/8`,
			},
		},
		{
			name: "tag with pid",
			in:   `<13>Feb  5 17:32:18 web01 sshd[4721]: session opened`,
			want: Message{
				Facility: 1, Severity: 5, RFC: 3164,
				Time:    time.Date(0, 2, 5, 17, 32, 18, 0, time.UTC),
				HasTime: true, Hostname: "web01", App: "sshd",
				Msg: "session opened",
			},
		},
		{
			name: "no timestamp",
			in:   `<13>plain message without timestamp`,
			want: Message{Facility: 1, Severity: 5, RFC: 3164, Msg: "plain message without timestamp"},
		},
		{
			name: "no tag",
			in:   `<13>Feb  5 17:32:18 web01 free-form message`,
			want: Message{
				Facility: 1, Severity: 5, RFC: 3164,
				Time:    time.Date(0, 2, 5, 17, 32, 18, 0, time.UTC),
				HasTime: true, Hostname: "web01", Msg: "free-form message",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseSyslog([]byte(tc.in))
			if err != nil {
				t.Fatalf("ParseSyslog(%q) error: %v", tc.in, err)
			}
			if got != tc.want {
				t.Errorf("ParseSyslog(%q)\n got %+v\nwant %+v", tc.in, got, tc.want)
			}
		})
	}
}

// malformedCorpus is the deterministic malformed-input table: every entry
// has broken syslog framing or headers, must parse without panic, and —
// because the front door forwards rather than discards — must leave the
// payload recoverable via Msg.
var malformedCorpus = []string{
	"",
	"<",
	"<>",
	"<1",
	"<abc>ok",
	"<999>too big a priority",
	"<1922>four digit priority",
	"<34>",
	"<34>1",
	"<34>1 ",
	"<165>1 not-a-timestamp host app - - - body",
	"<165>1 2003-10-11T22:14:15Z host app - - [unterminated body",
	"<165>1 2003-10-11T22:14:15Z host app - - }bad-sd body",
	"<13>Oct 99 99:99:99 impossible timestamp",
	"no pri at all",
	"\x00\x01\x02 binary garbage",
	strings.Repeat("<34>", 1000),
	"<34>Oct 11 22:14:15 " + strings.Repeat("x", 4096),
	"<165>1 - - - - - \xff\xfe invalid utf8 \xff",
	"123 <34>octet count leaked into payload",
}

// TestParseSyslogMalformed: no corpus entry may panic, and entries with a
// recoverable PRI keep their facility/severity split while the rest
// surface the payload verbatim.
func TestParseSyslogMalformed(t *testing.T) {
	for _, in := range malformedCorpus {
		m, err := ParseSyslog([]byte(in))
		if err != nil {
			// Unparseable: the contract is payload preservation.
			if m.Msg == "" && in != "" && m.RFC == 0 {
				t.Errorf("ParseSyslog(%q): error %v but payload not preserved", in, err)
			}
			continue
		}
		if m.Severity < 0 || m.Severity > 7 {
			t.Errorf("ParseSyslog(%q): severity %d out of range", in, m.Severity)
		}
	}
}

func TestSeverityName(t *testing.T) {
	if got := SeverityName(3); got != "err" {
		t.Errorf("SeverityName(3) = %q, want err", got)
	}
	if got := SeverityName(42); got != "unknown" {
		t.Errorf("SeverityName(42) = %q, want unknown", got)
	}
}

// FuzzSyslogRFC3164 asserts ParseSyslog never panics and never loses the
// facility/severity split on inputs shaped like legacy syslog.
func FuzzSyslogRFC3164(f *testing.F) {
	f.Add("<34>Oct 11 22:14:15 mymachine su: 'su root' failed")
	f.Add("<13>Feb  5 17:32:18 web01 sshd[4721]: session opened")
	f.Add("<13>no timestamp here")
	f.Add("<0>")
	for _, c := range malformedCorpus {
		f.Add(c)
	}
	f.Fuzz(func(t *testing.T, in string) {
		m, err := ParseSyslog([]byte(in))
		if err != nil {
			return
		}
		if m.Facility < 0 || m.Facility > 23 || m.Severity < 0 || m.Severity > 7 {
			t.Fatalf("ParseSyslog(%q): PRI out of range: %+v", in, m)
		}
		if m.RFC != 3164 && m.RFC != 5424 {
			t.Fatalf("ParseSyslog(%q): nil error but RFC = %d", in, m.RFC)
		}
	})
}

// FuzzSyslogRFC5424 drives the structured-data and timestamp paths.
func FuzzSyslogRFC5424(f *testing.F) {
	f.Add(`<34>1 2003-10-11T22:14:15.003Z mymachine su 1234 ID47 - msg`)
	f.Add(`<165>1 - - - - - -`)
	f.Add(`<165>1 - h a - - [x k="v \] esc"][y] body`)
	f.Add(`<165>1 - h a - - [never closed`)
	f.Fuzz(func(t *testing.T, in string) {
		m, err := ParseSyslog([]byte(in))
		if err == nil && m.RFC == 5424 && m.HasTime && m.Time.IsZero() {
			t.Fatalf("ParseSyslog(%q): HasTime with zero time", in)
		}
	})
}
