package intake

import (
	"testing"
	"time"

	"loglens/internal/clock"
)

func TestLimiterBurstThenRefill(t *testing.T) {
	fc := clock.NewFake()
	l := NewLimiter(fc, 10, 5)
	for i := 0; i < 5; i++ {
		if ok, _ := l.Take("t1"); !ok {
			t.Fatalf("take %d within burst refused", i)
		}
	}
	ok, wait := l.Take("t1")
	if ok {
		t.Fatal("take beyond burst granted")
	}
	if wait <= 0 || wait > 100*time.Millisecond {
		t.Fatalf("wait = %v, want (0, 100ms] at 10 lines/sec", wait)
	}
	fc.Advance(wait)
	if ok, _ := l.Take("t1"); !ok {
		t.Fatal("take after advised wait still refused")
	}
}

func TestLimiterTenantIsolation(t *testing.T) {
	fc := clock.NewFake()
	l := NewLimiter(fc, 100, 10)
	for i := 0; i < 10; i++ {
		l.Take("flooder")
	}
	if ok, _ := l.Take("flooder"); ok {
		t.Fatal("flooder not capped")
	}
	// The flooder's exhaustion must not touch another tenant's bucket.
	if ok, _ := l.Take("compliant"); !ok {
		t.Fatal("compliant tenant refused because another tenant flooded")
	}
	if got := l.Tenants(); got != 2 {
		t.Fatalf("Tenants() = %d, want 2", got)
	}
}

func TestLimiterSteadyRate(t *testing.T) {
	fc := clock.NewFake()
	l := NewLimiter(fc, 50, 1)
	granted := 0
	// Drain the burst, then walk 2 simulated seconds in 10ms steps.
	for ok, _ := l.Take("t"); ok; ok, _ = l.Take("t") {
		granted++
	}
	for i := 0; i < 200; i++ {
		fc.Advance(10 * time.Millisecond)
		for {
			ok, _ := l.Take("t")
			if !ok {
				break
			}
			granted++
		}
	}
	// 1 burst token + 2s * 50/s.
	if granted < 100 || granted > 101 {
		t.Fatalf("granted %d tokens over 2s at 50/s burst 1, want 100-101", granted)
	}
}

func TestLimiterTakeN(t *testing.T) {
	fc := clock.NewFake()
	l := NewLimiter(fc, 10, 10)
	if got := l.TakeN("t", 7); got != 7 {
		t.Fatalf("TakeN(7) with 10 tokens = %d", got)
	}
	if got := l.TakeN("t", 7); got != 3 {
		t.Fatalf("TakeN(7) with 3 tokens = %d", got)
	}
	if got := l.TakeN("t", 7); got != 0 {
		t.Fatalf("TakeN(7) with 0 tokens = %d", got)
	}
	fc.Advance(time.Second)
	if got := l.TakeN("t", 100); got != 10 {
		t.Fatalf("TakeN(100) after 1s refill = %d, want 10 (burst cap)", got)
	}
}

func TestLimiterUnlimited(t *testing.T) {
	l := NewLimiter(clock.NewFake(), 0, 0)
	for i := 0; i < 10_000; i++ {
		if ok, _ := l.Take("t"); !ok {
			t.Fatal("rate 0 must never refuse")
		}
	}
	if got := l.TakeN("t", 1<<20); got != 1<<20 {
		t.Fatalf("TakeN unlimited = %d", got)
	}
}
