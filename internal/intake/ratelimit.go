package intake

import (
	"sync"
	"time"

	"loglens/internal/clock"
)

// Limiter is a per-tenant token-bucket rate limiter on the injected
// clock. Each tenant owns an independent bucket refilling at rate
// tokens/sec up to burst, so one flooding tenant exhausts only its own
// bucket — the isolation property the fairness scenario asserts.
//
// A rate of 0 disables limiting (every Take succeeds). Limiter is safe
// for concurrent use; the per-call cost is one mutex and a handful of
// float ops, far below the syscall cost of reading the line off a socket.
type Limiter struct {
	clk   clock.Clock
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewLimiter builds a limiter granting rate lines/sec with the given
// burst per tenant (burst <= 0 defaults to one second's worth, floor 1).
func NewLimiter(clk clock.Clock, rate, burst int) *Limiter {
	b := float64(burst)
	if burst <= 0 {
		b = float64(rate)
		if b < 1 {
			b = 1
		}
	}
	return &Limiter{
		clk:     clk,
		rate:    float64(rate),
		burst:   b,
		buckets: make(map[string]*bucket),
	}
}

// refillLocked advances a bucket to now.
func (l *Limiter) refillLocked(b *bucket, now time.Time) {
	if elapsed := now.Sub(b.last); elapsed > 0 {
		b.tokens += elapsed.Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
}

func (l *Limiter) bucketLocked(tenant string, now time.Time) *bucket {
	b := l.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	}
	return b
}

// Take consumes one token for tenant if available. On failure it also
// returns how long the tenant must wait for the next token — the TCP
// path's backpressure sleep, so a capped sender is slowed instead of
// spun against.
func (l *Limiter) Take(tenant string) (ok bool, wait time.Duration) {
	if l.rate <= 0 {
		return true, 0
	}
	now := l.clk.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.bucketLocked(tenant, now)
	l.refillLocked(b, now)
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// TakeN consumes up to n tokens for tenant, returning how many were
// granted — the HTTP bulk path's partial admission.
func (l *Limiter) TakeN(tenant string, n int) int {
	if l.rate <= 0 || n <= 0 {
		return n
	}
	now := l.clk.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.bucketLocked(tenant, now)
	l.refillLocked(b, now)
	granted := int(b.tokens)
	if granted > n {
		granted = n
	}
	if granted > 0 {
		b.tokens -= float64(granted)
	}
	return granted
}

// Tenants returns how many tenant buckets exist (stats surface).
func (l *Limiter) Tenants() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
