package intake

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"loglens/internal/clock"
	"loglens/internal/metrics"
	"loglens/internal/obs"
)

// DefaultQueueDepth bounds the intake queue when Config.QueueDepth is
// zero: enough to ride out a micro-batch stall without letting a flood
// grow the heap.
const DefaultQueueDepth = 8192

// DefaultTenant is the tenant lines fall under when the wire format
// carries no hostname/tenant and Config.DefaultTenant is unset.
const DefaultTenant = "default"

// Shed reasons: every line the admission layer refuses is accounted under
// exactly one of these in intake_lines_shed_total and the flight
// recorder.
const (
	ShedRate     = "rate"     // tenant over its token-bucket rate limit
	ShedQueue    = "queue"    // bounded intake queue full
	ShedShutdown = "shutdown" // admission aborted by shutdown
)

// Config tunes the intake service. The zero value disables every
// listener.
type Config struct {
	// SyslogUDP, SyslogTCP, and HTTP are the listen addresses
	// (host:port; empty disables that listener). HTTP serves POST
	// /api/ingest.
	SyslogUDP string
	SyslogTCP string
	HTTP      string

	// TenantRate is the steady-state admission rate per tenant in
	// lines/sec (0 = unlimited); TenantBurst is the token-bucket size
	// (default one second's worth). TCP senders over their rate are
	// slowed by backpressure (reads stop, TCP flow control pushes back);
	// UDP datagrams and HTTP lines over it are shed.
	TenantRate  int
	TenantBurst int

	// QueueDepth bounds the intake queue between the listeners and the
	// bus (default DefaultQueueDepth). When full, TCP reads block
	// (backpressure) and UDP/HTTP lines are shed with reason "queue".
	QueueDepth int

	// MaxLineBytes caps one wire frame / HTTP line (default
	// DefaultMaxLineBytes).
	MaxLineBytes int

	// MaxConns caps concurrent TCP connections (default 4096); beyond
	// it new connections are closed immediately and counted.
	MaxConns int

	// IdleTimeout reaps TCP connections that send nothing for this long
	// (0 = never): a stalled peer holds a goroutine, not a partition.
	IdleTimeout time.Duration

	// DefaultTenant receives lines whose wire format names no tenant
	// (default DefaultTenant).
	DefaultTenant string

	// Clock drives rate-limit refill and idle accounting (default the
	// wall clock; tests inject clock.Fake).
	Clock clock.Clock
	// Metrics receives the intake_* instruments (nil = none).
	Metrics *metrics.Registry
	// Events is the flight recorder every shed line and rejected
	// connection is written to (nil = disabled).
	Events *obs.FlightRecorder
}

// Enabled reports whether any listener is configured.
func (c Config) Enabled() bool {
	return c.SyslogUDP != "" || c.SyslogTCP != "" || c.HTTP != ""
}

// PublishFunc receives admitted lines from the pump, in admission order,
// from a single goroutine. seq increases per tenant from 1. The raw slice
// is owned by the callee. admitted is the injected-clock stamp taken at
// queue admission — the anchor for the intake stage of the latency
// plane (queue wait + pump scheduling). It is stamped on a 1-in-16
// per-tenant sample and is the zero time otherwise: a clock read per
// line would dominate the admission hot path.
type PublishFunc func(tenant string, seq uint64, raw []byte, admitted time.Time)

// item is one admitted line waiting in the intake queue.
type item struct {
	tenant   string
	raw      []byte
	admitted time.Time
}

// tenantStats is the per-tenant accounting behind GET /api/intake.
type tenantStats struct {
	accepted     atomic.Uint64
	published    atomic.Uint64
	shedRate     atomic.Uint64
	shedQueue    atomic.Uint64
	shedShutdown atomic.Uint64
	// shedCtr mirrors the shed counts into tenant-labeled registry
	// counters (intake_tenant_shed_total{reason,tenant}) so dashboards
	// can break shedding down per tenant without the Stats endpoint.
	// A distinct metric name keeps sums over intake_lines_shed_total
	// from double-counting. Indexed like shedByReason.
	shedCtr [3]*metrics.Counter
	// tick drives the 1-in-16 sampling of the admission stamp feeding
	// the intake stage histogram: a clock read per admitted line would
	// be the single biggest cost on the intake hot path, and the stage
	// is distribution telemetry, not per-line accounting. Atomic:
	// connections enqueue concurrently.
	tick atomic.Uint64
}

// TenantSnapshot is one tenant's intake accounting.
type TenantSnapshot struct {
	Tenant    string `json:"tenant"`
	Accepted  uint64 `json:"accepted"`
	Published uint64 `json:"published"`
	Shed      uint64 `json:"shed"`
	ShedRate  uint64 `json:"shedRate"`
	ShedQueue uint64 `json:"shedQueue"`
}

// Stats is a consistent-enough snapshot of the intake service for the
// dashboard: totals, queue occupancy, connection counts, and the
// per-tenant breakdown sorted by tenant.
type Stats struct {
	Accepted      uint64           `json:"accepted"`
	Published     uint64           `json:"published"`
	Shed          uint64           `json:"shed"`
	Malformed     uint64           `json:"malformed"`
	FrameErrors   uint64           `json:"frameErrors"`
	QueueDepth    int              `json:"queueDepth"`
	QueueCapacity int              `json:"queueCapacity"`
	ActiveConns   int64            `json:"activeConns"`
	ConnsRejected uint64           `json:"connsRejected"`
	TenantRate    int              `json:"tenantRate"`
	Tenants       []TenantSnapshot `json:"tenants"`
}

// Service is the running front door: listeners, admission, and the pump
// feeding PublishFunc.
type Service struct {
	cfg     Config
	clk     clock.Clock
	publish PublishFunc
	limiter *Limiter
	events  *obs.FlightRecorder

	queue chan item
	// closing is closed when Shutdown begins: listeners stop, blocked
	// admissions keep draining. done is closed when the drain grace
	// expires (or Close aborts): blocked admissions shed and give up.
	closing chan struct{}
	done    chan struct{}

	// producers tracks every goroutine (and HTTP handler) that may send
	// on queue; the queue closes only after they all exit.
	prodMu    sync.Mutex
	draining  bool
	producers sync.WaitGroup

	pumpExited chan struct{}

	udpConn  net.PacketConn
	tcpLn    net.Listener
	httpLn   net.Listener
	httpSrv  *httpServer
	conns    map[net.Conn]struct{}
	connsMu  sync.Mutex
	active   atomic.Int64
	started  atomic.Bool
	stopped  atomic.Bool
	udpDead  atomic.Bool
	tcpDead  atomic.Bool
	httpDead atomic.Bool

	tenantsMu sync.Mutex
	tenants   map[string]*tenantStats

	shutdownOnce sync.Once
	shutdownErr  error

	// Registry handles (never nil: a nil registry hands out no-op
	// instruments).
	acceptedTotal  *metrics.Counter
	publishedTotal *metrics.Counter
	malformedTotal *metrics.Counter
	frameErrTotal  *metrics.Counter
	connsTotal     *metrics.Counter
	connsRejected  *metrics.Counter
	bytesTotal     *metrics.Counter
	queueDepth     *metrics.Gauge
	queueCap       *metrics.Gauge
	connsActive    *metrics.Gauge
	shedByReason   [3]*metrics.Counter // rate, queue, shutdown
	// reg hands out the per-tenant shed counters as tenants appear.
	reg *metrics.Registry
}

// New constructs a Service; Start binds the listeners.
func New(cfg Config, publish PublishFunc) *Service {
	if cfg.Clock == nil {
		cfg.Clock = clock.New()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.MaxLineBytes <= 0 {
		cfg.MaxLineBytes = DefaultMaxLineBytes
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 4096
	}
	if cfg.DefaultTenant == "" {
		cfg.DefaultTenant = DefaultTenant
	}
	reg := cfg.Metrics
	if reg == nil {
		// A nil registry would alias every handle to the shared no-op
		// counter, cross-contaminating Stats. A private registry keeps the
		// snapshot honest even when nothing scrapes it.
		reg = metrics.NewRegistry()
	}
	s := &Service{
		cfg:        cfg,
		clk:        cfg.Clock,
		publish:    publish,
		limiter:    NewLimiter(cfg.Clock, cfg.TenantRate, cfg.TenantBurst),
		events:     cfg.Events,
		queue:      make(chan item, cfg.QueueDepth),
		closing:    make(chan struct{}),
		done:       make(chan struct{}),
		pumpExited: make(chan struct{}),
		conns:      make(map[net.Conn]struct{}),
		tenants:    make(map[string]*tenantStats),

		acceptedTotal:  reg.Counter("intake_lines_accepted_total"),
		publishedTotal: reg.Counter("intake_lines_published_total"),
		malformedTotal: reg.Counter("intake_lines_malformed_total"),
		frameErrTotal:  reg.Counter("intake_frame_errors_total"),
		connsTotal:     reg.Counter("intake_conns_total"),
		connsRejected:  reg.Counter("intake_conns_rejected_total"),
		bytesTotal:     reg.Counter("intake_bytes_total"),
		queueDepth:     reg.Gauge("intake_queue_depth"),
		queueCap:       reg.Gauge("intake_queue_capacity"),
		connsActive:    reg.Gauge("intake_conns_active"),
		reg:            reg,
	}
	s.shedByReason[0] = reg.Counter("intake_lines_shed_total", "reason", ShedRate)
	s.shedByReason[1] = reg.Counter("intake_lines_shed_total", "reason", ShedQueue)
	s.shedByReason[2] = reg.Counter("intake_lines_shed_total", "reason", ShedShutdown)
	s.queueCap.Set(int64(cfg.QueueDepth))
	return s
}

// Start binds every configured listener and launches the accept loops and
// the pump. It returns the first bind error, closing anything already
// bound.
func (s *Service) Start() error {
	if s.started.Swap(true) {
		return fmt.Errorf("intake: already started")
	}
	if s.cfg.SyslogUDP != "" {
		pc, err := net.ListenPacket("udp", s.cfg.SyslogUDP)
		if err != nil {
			return fmt.Errorf("intake: udp listen: %w", err)
		}
		s.udpConn = pc
	}
	if s.cfg.SyslogTCP != "" {
		ln, err := net.Listen("tcp", s.cfg.SyslogTCP)
		if err != nil {
			s.closeListeners()
			return fmt.Errorf("intake: tcp listen: %w", err)
		}
		s.tcpLn = ln
	}
	if s.cfg.HTTP != "" {
		ln, err := net.Listen("tcp", s.cfg.HTTP)
		if err != nil {
			s.closeListeners()
			return fmt.Errorf("intake: http listen: %w", err)
		}
		s.httpLn = ln
		s.httpSrv = newHTTPServer(s)
	}
	go s.pump()
	if s.udpConn != nil {
		s.producers.Add(1)
		go s.runUDP()
	}
	if s.tcpLn != nil {
		s.producers.Add(1)
		go s.runTCP()
	}
	if s.httpSrv != nil {
		go s.httpSrv.serve(s.httpLn)
	}
	return nil
}

// UDPAddr, TCPAddr, and HTTPAddr return the bound listener addresses
// (empty when that listener is off) — tests bind ":0" and read these.
func (s *Service) UDPAddr() string {
	if s.udpConn == nil {
		return ""
	}
	return s.udpConn.LocalAddr().String()
}

func (s *Service) TCPAddr() string {
	if s.tcpLn == nil {
		return ""
	}
	return s.tcpLn.Addr().String()
}

func (s *Service) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

func (s *Service) closeListeners() {
	if s.udpConn != nil {
		s.udpConn.Close()
	}
	if s.tcpLn != nil {
		s.tcpLn.Close()
	}
	if s.httpLn != nil {
		s.httpLn.Close()
	}
}

// tenant returns (creating if needed) the stats cell for a tenant.
func (s *Service) tenant(name string) *tenantStats {
	s.tenantsMu.Lock()
	ts := s.tenants[name]
	if ts == nil {
		ts = &tenantStats{}
		ts.shedCtr[0] = s.reg.Counter("intake_tenant_shed_total", "reason", ShedRate, "tenant", name)
		ts.shedCtr[1] = s.reg.Counter("intake_tenant_shed_total", "reason", ShedQueue, "tenant", name)
		ts.shedCtr[2] = s.reg.Counter("intake_tenant_shed_total", "reason", ShedShutdown, "tenant", name)
		s.tenants[name] = ts
	}
	s.tenantsMu.Unlock()
	return ts
}

// accept accounts one line that arrived intact from the wire. Every
// accepted line ends up either published or shed — the conservation
// anchor.
func (s *Service) accept(ts *tenantStats, n int) {
	ts.accepted.Add(uint64(n))
	s.acceptedTotal.Add(uint64(n))
}

// shed accounts one refused line under reason and writes it to the
// flight recorder.
func (s *Service) shed(tenant string, ts *tenantStats, reason string, n int) {
	un := uint64(n)
	switch reason {
	case ShedRate:
		ts.shedRate.Add(un)
		ts.shedCtr[0].Add(un)
		s.shedByReason[0].Add(un)
	case ShedQueue:
		ts.shedQueue.Add(un)
		ts.shedCtr[1].Add(un)
		s.shedByReason[1].Add(un)
	default:
		ts.shedShutdown.Add(un)
		ts.shedCtr[2].Add(un)
		s.shedByReason[2].Add(un)
	}
	s.events.Record(obs.EventIntakeShed, tenant, reason, int64(n))
}

// enqueue places an admitted line on the intake queue, blocking when
// block is set (TCP backpressure) and shedding otherwise. The raw bytes
// are copied: the caller's buffer is reused by the framing layer.
func (s *Service) enqueue(tenant string, ts *tenantStats, raw []byte, block bool) bool {
	it := item{tenant: tenant, raw: append([]byte(nil), raw...)}
	if ts.tick.Add(1)&15 == 1 {
		it.admitted = s.clk.Now()
	}
	if block {
		select {
		case s.queue <- it:
		case <-s.done:
			s.shed(tenant, ts, ShedShutdown, 1)
			return false
		}
		s.queueDepth.Set(int64(len(s.queue)))
		return true
	}
	select {
	case s.queue <- it:
		s.queueDepth.Set(int64(len(s.queue)))
		return true
	default:
		s.shed(tenant, ts, ShedQueue, 1)
		return false
	}
}

// admitBlocking is the TCP admission path: wait for a rate token (the
// backpressure that stops the socket read loop, so TCP flow control slows
// the sender), then a queue slot. Returns false when shutdown aborted the
// wait (the line is accounted as shed).
func (s *Service) admitBlocking(tenant string, ts *tenantStats, raw []byte) bool {
	for {
		ok, wait := s.limiter.Take(tenant)
		if ok {
			break
		}
		select {
		case <-s.clk.After(wait):
		case <-s.done:
			s.shed(tenant, ts, ShedShutdown, 1)
			return false
		}
	}
	return s.enqueue(tenant, ts, raw, true)
}

// admitDropping is the UDP admission path: no token or no queue slot
// sheds the datagram (UDP has no flow control to push on).
func (s *Service) admitDropping(tenant string, ts *tenantStats, raw []byte) bool {
	if ok, _ := s.limiter.Take(tenant); !ok {
		s.shed(tenant, ts, ShedRate, 1)
		return false
	}
	return s.enqueue(tenant, ts, raw, false)
}

// pump is the single consumer of the intake queue: it stamps per-tenant
// sequence numbers and hands lines downstream in admission order. It
// exits when the queue closes (after every producer is gone).
func (s *Service) pump() {
	defer close(s.pumpExited)
	seqs := make(map[string]uint64)
	for it := range s.queue {
		s.queueDepth.Set(int64(len(s.queue)))
		seqs[it.tenant]++
		s.publish(it.tenant, seqs[it.tenant], it.raw, it.admitted)
		s.tenant(it.tenant).published.Add(1)
		s.publishedTotal.Add(1)
	}
}

// producerEnter registers a goroutine (or HTTP handler) that may send on
// the queue; it fails once draining has begun. Callers must call
// producerExit when done.
func (s *Service) producerEnter() bool {
	s.prodMu.Lock()
	defer s.prodMu.Unlock()
	if s.draining {
		return false
	}
	s.producers.Add(1)
	return true
}

func (s *Service) producerExit() { s.producers.Done() }

// trackConn registers a live TCP connection so shutdown can unblock its
// read; untrackConn removes it.
func (s *Service) trackConn(c net.Conn) {
	s.connsMu.Lock()
	s.conns[c] = struct{}{}
	s.connsMu.Unlock()
}

func (s *Service) untrackConn(c net.Conn) {
	s.connsMu.Lock()
	delete(s.conns, c)
	s.connsMu.Unlock()
}

// aLongTimeAgo is a fixed past deadline: setting it on a connection makes
// any blocked or future read return immediately, while data already
// buffered in the framing scanner still drains.
var aLongTimeAgo = time.Unix(1, 0)

// interruptConns makes every tracked connection's blocked read return;
// with force it closes them outright.
func (s *Service) interruptConns(force bool) {
	s.connsMu.Lock()
	for c := range s.conns {
		if force {
			c.Close()
		} else {
			c.SetReadDeadline(aLongTimeAgo)
		}
	}
	s.connsMu.Unlock()
}

// Shutdown drains the front door: listeners stop accepting, in-flight
// HTTP requests and TCP connections finish what they have buffered, the
// queue drains into the publish callback, and the pump exits. Past ctx's
// deadline the remaining blocked admissions are shed (accounted under
// reason "shutdown") instead of waited for. Safe to call more than once.
func (s *Service) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() { s.shutdownErr = s.shutdown(ctx, false) })
	return s.shutdownErr
}

// Close aborts the front door without draining: every blocked admission
// sheds immediately and connections are closed. Lines already on the
// queue still reach the publish callback (the queue is bounded, so this
// stays prompt).
func (s *Service) Close() error {
	s.shutdownOnce.Do(func() { s.shutdownErr = s.shutdown(expiredCtx{}, true) })
	return s.shutdownErr
}

// expiredCtx is an always-done context: Close reuses the shutdown path
// with the grace already elapsed.
type expiredCtx struct{}

func (expiredCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (expiredCtx) Done() <-chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}
func (expiredCtx) Err() error    { return context.Canceled }
func (expiredCtx) Value(any) any { return nil }

func (s *Service) shutdown(ctx context.Context, force bool) error {
	if !s.started.Load() {
		s.stopped.Store(true)
		return nil
	}
	close(s.closing)
	s.closeListeners()
	if s.httpSrv != nil {
		s.httpSrv.shutdown(ctx, force)
	}
	// No new producers from here on; the HTTP server has drained (or been
	// force-closed), so only TCP/UDP loops remain in flight.
	s.prodMu.Lock()
	s.draining = true
	s.prodMu.Unlock()
	s.interruptConns(force)

	drained := make(chan struct{})
	go func() {
		s.producers.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		// Grace expired: abort blocked admissions (they shed) and force
		// the sockets closed, then wait for the handlers to notice.
		err = fmt.Errorf("intake: drain grace expired; shedding in-flight lines")
		close(s.done)
		s.interruptConns(true)
		<-drained
	}
	select {
	case <-s.done:
	default:
		close(s.done)
	}
	// All producers gone: the queue can close, and the pump drains what
	// was admitted before exiting.
	close(s.queue)
	<-s.pumpExited
	s.stopped.Store(true)
	return err
}

// Stats snapshots the intake accounting for the dashboard.
func (s *Service) Stats() Stats {
	st := Stats{
		Accepted:      s.acceptedTotal.Value(),
		Published:     s.publishedTotal.Value(),
		Malformed:     s.malformedTotal.Value(),
		FrameErrors:   s.frameErrTotal.Value(),
		QueueDepth:    len(s.queue),
		QueueCapacity: s.cfg.QueueDepth,
		ActiveConns:   s.active.Load(),
		ConnsRejected: s.connsRejected.Value(),
		TenantRate:    s.cfg.TenantRate,
	}
	st.Shed = s.shedByReason[0].Value() + s.shedByReason[1].Value() + s.shedByReason[2].Value()
	s.tenantsMu.Lock()
	for name, ts := range s.tenants {
		shedRate, shedQueue := ts.shedRate.Load(), ts.shedQueue.Load()
		st.Tenants = append(st.Tenants, TenantSnapshot{
			Tenant:    name,
			Accepted:  ts.accepted.Load(),
			Published: ts.published.Load(),
			Shed:      shedRate + shedQueue + ts.shedShutdown.Load(),
			ShedRate:  shedRate,
			ShedQueue: shedQueue,
		})
	}
	s.tenantsMu.Unlock()
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Tenant < st.Tenants[j].Tenant })
	return st
}

// Probe is the intake health probe: degraded when the queue saturates
// (the service is shedding), unhealthy when a configured listener loop
// has died outside shutdown.
func (s *Service) Probe() obs.ProbeResult {
	if s.stopped.Load() {
		return obs.ProbeResult{Status: obs.Degraded, Detail: "intake stopped"}
	}
	if !s.started.Load() {
		return obs.ProbeResult{Status: obs.Degraded, Detail: "intake not started"}
	}
	if s.udpDead.Load() || s.tcpDead.Load() || s.httpDead.Load() {
		return obs.ProbeResult{Status: obs.Unhealthy, Detail: "intake listener loop dead"}
	}
	depth, capacity := len(s.queue), s.cfg.QueueDepth
	if depth*10 >= capacity*9 {
		return obs.ProbeResult{Status: obs.Degraded,
			Detail: fmt.Sprintf("intake queue %d/%d: shedding imminent", depth, capacity)}
	}
	return obs.ProbeResult{Status: obs.Healthy,
		Detail: fmt.Sprintf("queue %d/%d, %d conns", depth, capacity, s.active.Load())}
}
