package intake

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
)

// maxIngestBody caps one POST /api/ingest request body. Bulk senders
// wanting more throughput open more requests, not bigger ones — bigger
// bodies just move the bounded queue into the HTTP layer.
const maxIngestBody = 8 << 20

// IngestRequest is the POST /api/ingest body: a batch of raw log lines
// for one tenant.
type IngestRequest struct {
	// Tenant keys rate limiting and downstream source attribution
	// (default: the service's default tenant).
	Tenant string `json:"tenant"`
	// Lines are the raw log lines; empty lines are ignored.
	Lines []string `json:"lines"`
}

// IngestResponse reports the fate of every line in the batch. Partial
// admission is normal under rate limiting: the client re-sends the shed
// tail after a backoff.
type IngestResponse struct {
	Accepted  int    `json:"accepted"`
	Shed      int    `json:"shed"`
	ShedRate  int    `json:"shedRate"`
	ShedQueue int    `json:"shedQueue"`
	Error     string `json:"error,omitempty"`
}

// httpServer wraps net/http for the ingest endpoint.
type httpServer struct {
	srv *http.Server
}

func newHTTPServer(s *Service) *httpServer {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/ingest", s.handleIngest)
	return &httpServer{srv: &http.Server{Handler: mux}}
}

func (h *httpServer) serve(ln net.Listener) {
	err := h.srv.Serve(ln)
	if err != nil && !errors.Is(err, http.ErrServerClosed) && !errors.Is(err, net.ErrClosed) {
		// Serve only returns on listener failure; shutdown closes the
		// listener deliberately and is filtered above.
		_ = err
	}
}

// shutdown waits for in-flight requests within ctx's grace; force (or an
// expired grace) closes connections outright.
func (h *httpServer) shutdown(ctx context.Context, force bool) {
	if force {
		h.srv.Close()
		return
	}
	if err := h.srv.Shutdown(ctx); err != nil {
		h.srv.Close()
	}
}

// handleIngest is POST /api/ingest: decode the batch, admit what the
// tenant's rate and the queue allow, and report the split. All-shed
// batches surface as 429 (rate) or 503 (queue/shutdown) so clients back
// off; partial admission returns 200 with the counts.
func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, IngestResponse{Error: "POST required"})
		return
	}
	var req IngestRequest
	body := http.MaxBytesReader(w, r.Body, maxIngestBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, IngestResponse{Error: "bad request: " + err.Error()})
		return
	}
	lines := req.Lines[:0]
	for _, ln := range req.Lines {
		if ln != "" {
			lines = append(lines, ln)
		}
	}
	if len(lines) == 0 {
		writeJSON(w, http.StatusBadRequest, IngestResponse{Error: "no lines"})
		return
	}
	if !s.producerEnter() {
		writeJSON(w, http.StatusServiceUnavailable, IngestResponse{Shed: len(lines), Error: "shutting down"})
		return
	}
	defer s.producerExit()

	tenant := req.Tenant
	if tenant == "" {
		tenant = s.cfg.DefaultTenant
	}
	ts := s.tenant(tenant)
	s.accept(ts, len(lines))
	for _, ln := range lines {
		s.bytesTotal.Add(uint64(len(ln)))
	}

	var resp IngestResponse
	granted := s.limiter.TakeN(tenant, len(lines))
	for _, ln := range lines[:granted] {
		if s.enqueue(tenant, ts, []byte(ln), false) {
			resp.Accepted++
		} else {
			resp.ShedQueue++ // enqueue already accounted the shed
		}
	}
	if over := len(lines) - granted; over > 0 {
		resp.ShedRate = over
		s.shed(tenant, ts, ShedRate, over)
	}
	resp.Shed = resp.ShedRate + resp.ShedQueue

	status := http.StatusOK
	if resp.Accepted == 0 {
		if resp.ShedQueue > 0 {
			status = http.StatusServiceUnavailable
		} else {
			status = http.StatusTooManyRequests
		}
	}
	writeJSON(w, status, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
