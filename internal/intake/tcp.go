package intake

import (
	"net"

	"loglens/internal/obs"
)

// runTCP is the syslog-TCP accept loop. Each connection gets its own
// goroutine reading frames through NewFrameScanner, so a slow or stalled
// peer occupies one goroutine and its socket buffers — never the accept
// loop or another connection.
func (s *Service) runTCP() {
	defer s.producerExit()
	for {
		conn, err := s.tcpLn.Accept()
		if err != nil {
			select {
			case <-s.closing:
			default:
				s.tcpDead.Store(true)
			}
			return
		}
		if s.active.Load() >= int64(s.cfg.MaxConns) {
			// At the cap: refuse outright rather than queue accepts. The
			// client sees a close and retries; we stay bounded.
			s.connsRejected.Inc()
			s.events.Record(obs.EventIntakeConnRejected, conn.RemoteAddr().String(), "conn cap", 1)
			conn.Close()
			continue
		}
		if !s.producerEnter() {
			conn.Close()
			return
		}
		s.active.Add(1)
		s.connsActive.Set(s.active.Load())
		s.connsTotal.Inc()
		s.trackConn(conn)
		go s.handleConn(conn)
	}
}

// handleConn reads one syslog-TCP connection to completion: frame, parse,
// admit (blocking — this read loop pausing is the backpressure), repeat.
// Any framing violation closes the connection; the peer is misbehaving
// and resynchronizing a length-prefixed stream is guesswork.
func (s *Service) handleConn(conn net.Conn) {
	defer func() {
		s.untrackConn(conn)
		conn.Close()
		s.active.Add(-1)
		s.connsActive.Set(s.active.Load())
		s.producerExit()
	}()
	sc := NewFrameScanner(conn, s.cfg.MaxLineBytes)
	for {
		if s.cfg.IdleTimeout > 0 {
			conn.SetReadDeadline(s.clk.Now().Add(s.cfg.IdleTimeout))
		}
		if !sc.Scan() {
			if err := sc.Err(); err != nil && IsFrameError(err) {
				s.frameErrTotal.Inc()
			}
			return
		}
		frame := sc.Bytes()
		if len(frame) == 0 {
			continue
		}
		s.bytesTotal.Add(uint64(len(frame)))
		tenant, payload := s.resolveSyslog(frame)
		ts := s.tenant(tenant)
		s.accept(ts, 1)
		if !s.admitBlocking(tenant, ts, payload) {
			// Shutdown aborted the admission wait; the line was accounted
			// as shed. Stop reading.
			return
		}
	}
}

// resolveSyslog parses a syslog frame into (tenant, payload to publish).
// The tenant is the syslog hostname when one parsed, else the configured
// default. Unparseable payloads are forwarded verbatim under the default
// tenant — the front door never discards data just for being malformed;
// the downstream parser quarantines what it must.
func (s *Service) resolveSyslog(frame []byte) (string, []byte) {
	m, err := ParseSyslog(frame)
	if err != nil || m.Msg == "" {
		s.malformedTotal.Inc()
		return s.cfg.DefaultTenant, append([]byte(nil), frame...)
	}
	tenant := m.Hostname
	if tenant == "" {
		tenant = s.cfg.DefaultTenant
	}
	return tenant, []byte(m.Msg)
}
