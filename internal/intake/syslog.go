// Package intake is the network front door of the service: syslog
// listeners over UDP and TCP (RFC 3164 and RFC 5424 payloads, newline and
// RFC 6587 octet-counted TCP framing) and an HTTP/JSON bulk endpoint, all
// feeding the pipeline through a bounded multi-tenant admission layer —
// per-tenant token-bucket rate limits, a bounded intake queue with
// accounted load shedding, slow-consumer isolation, and backpressure that
// stops reading from sockets (letting TCP flow control push back on the
// sender) instead of growing memory.
//
// The paper's deployment receives logs from a fleet of collector agents;
// this package is what stands between that fleet — including its hostile,
// misconfigured, and flooding members — and the analysis tier. Everything
// a client does lands in one of four accounted outcomes: published
// downstream, shed by the rate limiter, shed by the full queue, or shed at
// shutdown. accepted == published + shed always holds, which is what lets
// the conservation tests extend the lines-in == lines-out invariant across
// the network boundary.
package intake

import (
	"fmt"
	"time"
)

// Severity names per RFC 5424 §6.2.1 (identical in RFC 3164).
var severityNames = [8]string{
	"emerg", "alert", "crit", "err", "warning", "notice", "info", "debug",
}

// SeverityName returns the RFC 5424 keyword for a severity code (0-7).
func SeverityName(s int) string {
	if s < 0 || s > 7 {
		return "unknown"
	}
	return severityNames[s]
}

// Message is one parsed syslog message. The parser is deliberately
// permissive: real fleets emit slightly-wrong syslog constantly, and a
// front door that rejects them sheds data the analysis tier wants. Fields
// that cannot be recovered are left zero and the raw content is preserved
// in Msg.
type Message struct {
	// Facility and Severity decode the <PRI> header (facility*8+severity).
	Facility int
	Severity int
	// Time is the embedded timestamp; HasTime reports whether one parsed.
	Time    time.Time
	HasTime bool
	// Hostname identifies the sender — the intake layer's tenant key.
	Hostname string
	// App is the RFC 5424 APP-NAME or the RFC 3164 tag (when present).
	App string
	// Msg is the free-form message content.
	Msg string
	// RFC is 3164 or 5424, or 0 when the payload matched neither shape
	// (the whole payload is then preserved in Msg).
	RFC int
}

// rfc3164Layouts are the timestamp layouts RFC 3164 senders actually
// emit: the canonical asctime form plus the common ISO variant many
// daemons substitute.
var rfc3164Layouts = []string{
	time.Stamp, // "Jan _2 15:04:05"
}

// ParseSyslog decodes a syslog payload, accepting both RFC 3164 and
// RFC 5424 shapes. It never panics on any input; when the payload matches
// neither shape it returns an error and a Message whose Msg holds the
// payload verbatim, so callers can still forward the data raw.
func ParseSyslog(b []byte) (Message, error) {
	var m Message
	pri, rest, ok := parsePRI(b)
	if !ok {
		m.Msg = string(b)
		return m, fmt.Errorf("intake: no <PRI> header")
	}
	m.Facility, m.Severity = pri/8, pri%8
	if len(rest) >= 2 && rest[0] == '1' && rest[1] == ' ' {
		if err := parseRFC5424(rest[2:], &m); err != nil {
			m.Msg = string(rest)
			return m, err
		}
		m.RFC = 5424
		return m, nil
	}
	parseRFC3164(rest, &m)
	m.RFC = 3164
	return m, nil
}

// parsePRI decodes the "<NNN>" priority header, returning the value and
// the remainder. The RFC caps PRI at 191 and three digits.
func parsePRI(b []byte) (int, []byte, bool) {
	if len(b) < 3 || b[0] != '<' {
		return 0, nil, false
	}
	pri := 0
	i := 1
	for ; i < len(b) && i <= 4; i++ {
		c := b[i]
		if c == '>' {
			if i == 1 {
				return 0, nil, false
			}
			if pri > 191 {
				return 0, nil, false
			}
			return pri, b[i+1:], true
		}
		if c < '0' || c > '9' {
			return 0, nil, false
		}
		pri = pri*10 + int(c-'0')
	}
	return 0, nil, false
}

// parseRFC5424 decodes "TIMESTAMP HOSTNAME APP-NAME PROCID MSGID
// STRUCTURED-DATA [MSG]" after the version field. Nil-value fields are
// "-" per the RFC.
func parseRFC5424(b []byte, m *Message) error {
	ts, rest := nextField(b)
	if ts == "" {
		return fmt.Errorf("intake: rfc5424: missing timestamp")
	}
	if ts != "-" {
		t, err := time.Parse(time.RFC3339Nano, ts)
		if err != nil {
			return fmt.Errorf("intake: rfc5424: bad timestamp %q", ts)
		}
		m.Time, m.HasTime = t, true
	}
	host, rest := nextField(rest)
	if host != "-" {
		m.Hostname = host
	}
	app, rest := nextField(rest)
	if app != "-" {
		m.App = app
	}
	_, rest = nextField(rest) // PROCID
	_, rest = nextField(rest) // MSGID
	rest, err := skipStructuredData(rest)
	if err != nil {
		return err
	}
	// Optional BOM before the message body.
	if len(rest) >= 3 && rest[0] == 0xEF && rest[1] == 0xBB && rest[2] == 0xBF {
		rest = rest[3:]
	}
	m.Msg = string(rest)
	return nil
}

// nextField cuts the next space-delimited field off b.
func nextField(b []byte) (string, []byte) {
	for i := 0; i < len(b); i++ {
		if b[i] == ' ' {
			return string(b[:i]), b[i+1:]
		}
	}
	return string(b), nil
}

// skipStructuredData consumes the STRUCTURED-DATA element ("-" or one or
// more [id k="v"...] blocks, where values escape `\]` per the RFC) and
// returns the remainder after the separating space, if any.
func skipStructuredData(b []byte) ([]byte, error) {
	if len(b) == 0 {
		return nil, nil
	}
	if b[0] == '-' {
		if len(b) > 1 && b[1] == ' ' {
			return b[2:], nil
		}
		return b[1:], nil
	}
	if b[0] != '[' {
		return nil, fmt.Errorf("intake: rfc5424: malformed structured data")
	}
	i := 0
	for i < len(b) && b[i] == '[' {
		i++
		inQuote := false
		closed := false
		for ; i < len(b); i++ {
			c := b[i]
			if inQuote {
				if c == '\\' && i+1 < len(b) {
					i++ // escaped char inside a param value
					continue
				}
				if c == '"' {
					inQuote = false
				}
				continue
			}
			if c == '"' {
				inQuote = true
				continue
			}
			if c == ']' {
				i++
				closed = true
				break
			}
		}
		if !closed {
			return nil, fmt.Errorf("intake: rfc5424: unterminated structured data")
		}
	}
	if i < len(b) && b[i] == ' ' {
		i++
	}
	return b[i:], nil
}

// parseRFC3164 decodes the legacy "TIMESTAMP HOSTNAME TAG: MSG" shape.
// Every part is optional in the wild, so recovery is best-effort: a
// missing timestamp leaves HasTime false and treats the remainder as
// hostname + msg; a missing hostname leaves the tenant to the listener
// default.
func parseRFC3164(b []byte, m *Message) {
	rest := b
	for _, layout := range rfc3164Layouts {
		n := len(layout)
		if len(rest) >= n {
			if t, err := time.Parse(layout, string(rest[:n])); err == nil {
				m.Time, m.HasTime = t, true
				rest = rest[n:]
				if len(rest) > 0 && rest[0] == ' ' {
					rest = rest[1:]
				}
				break
			}
		}
	}
	if m.HasTime {
		// "HOSTNAME TAG: MSG" — hostname only follows a valid timestamp;
		// without one the first token is almost always message content.
		host, after := nextField(rest)
		if host != "" && after != nil {
			m.Hostname = host
			rest = after
		}
	}
	// Optional "tag[pid]:" prefix.
	if i := indexByte(rest, ':'); i > 0 && i <= 32 && !containsByte(rest[:i], ' ') {
		tag := rest[:i]
		if j := indexByte(tag, '['); j > 0 {
			tag = tag[:j]
		}
		m.App = string(tag)
		rest = rest[i+1:]
		if len(rest) > 0 && rest[0] == ' ' {
			rest = rest[1:]
		}
	}
	m.Msg = string(rest)
}

func indexByte(b []byte, c byte) int {
	for i := range b {
		if b[i] == c {
			return i
		}
	}
	return -1
}

func containsByte(b []byte, c byte) bool { return indexByte(b, c) >= 0 }
