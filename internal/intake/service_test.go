package intake

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"loglens/internal/clock"
	"loglens/internal/metrics"
	"loglens/internal/obs"
	"loglens/internal/testutil"
)

// collector is the test publish sink: it records every line the pump
// delivers, optionally blocking until released (to back the queue up on
// purpose).
type collector struct {
	mu       sync.Mutex
	byTenant map[string][]string
	total    atomic.Uint64
	block    chan struct{} // non-nil: publish waits until closed
}

func newCollector() *collector {
	return &collector{byTenant: make(map[string][]string)}
}

func (c *collector) publish(tenant string, seq uint64, raw []byte, _ time.Time) {
	if c.block != nil {
		<-c.block
	}
	c.mu.Lock()
	c.byTenant[tenant] = append(c.byTenant[tenant], string(raw))
	c.mu.Unlock()
	c.total.Add(1)
}

func (c *collector) lines(tenant string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.byTenant[tenant]...)
}

// startService builds and starts a Service on ephemeral ports, cleaning
// up at test end.
func startService(t *testing.T, cfg Config, sink *collector) *Service {
	t.Helper()
	s := New(cfg, sink.publish)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func dialTCP(t *testing.T, s *Service) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestServiceTCPEndToEnd: syslog frames over TCP in both framings reach
// the publish callback with the hostname as tenant and per-tenant seqs.
func TestServiceTCPEndToEnd(t *testing.T) {
	sink := newCollector()
	s := startService(t, Config{SyslogTCP: "127.0.0.1:0", Metrics: metrics.NewRegistry()}, sink)

	conn := dialTCP(t, s)
	payload := "<13>Feb  5 17:32:18 web01 app: hello line one\n"
	octet := "<13>Feb  5 17:32:18 web01 app: hello line two"
	fmt.Fprintf(conn, "%s%d %s", payload, len(octet), octet)
	conn.Close()

	testutil.WaitUntil(t, 5*time.Second, func() bool { return sink.total.Load() == 2 },
		"published lines did not arrive")
	got := sink.lines("web01")
	if len(got) != 2 || got[0] != "hello line one" || got[1] != "hello line two" {
		t.Fatalf("web01 lines = %q", got)
	}
	st := s.Stats()
	if st.Accepted != 2 || st.Published != 2 || st.Shed != 0 {
		t.Fatalf("stats = %+v, want 2 accepted, 2 published, 0 shed", st)
	}
}

// TestServiceMalformedForwardedRaw: an unparseable payload is still
// accepted — forwarded verbatim under the default tenant and counted
// malformed. The front door loses nothing to bad syntax.
func TestServiceMalformedForwardedRaw(t *testing.T) {
	sink := newCollector()
	s := startService(t, Config{
		SyslogTCP: "127.0.0.1:0", DefaultTenant: "dt", Metrics: metrics.NewRegistry(),
	}, sink)

	conn := dialTCP(t, s)
	fmt.Fprintf(conn, "no pri at all just text\n")
	conn.Close()

	testutil.WaitUntil(t, 5*time.Second, func() bool { return sink.total.Load() == 1 },
		"malformed line not published")
	if got := sink.lines("dt"); len(got) != 1 || got[0] != "no pri at all just text" {
		t.Fatalf("default-tenant lines = %q, want raw payload", got)
	}
	if st := s.Stats(); st.Malformed != 1 {
		t.Fatalf("Malformed = %d, want 1", st.Malformed)
	}
}

// TestServiceFrameErrorClosesOnlyThatConn: a framing violation kills the
// offending connection and counts a frame error; a healthy connection
// opened after it still flows.
func TestServiceFrameErrorClosesOnlyThatConn(t *testing.T) {
	sink := newCollector()
	s := startService(t, Config{
		SyslogTCP: "127.0.0.1:0", MaxLineBytes: 128, Metrics: metrics.NewRegistry(),
	}, sink)

	bad := dialTCP(t, s)
	fmt.Fprintf(bad, "999999 oversized octet count claim")
	// The violating conn gets closed by the server.
	buf := make([]byte, 1)
	bad.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := bad.Read(buf); err == nil {
		t.Fatal("expected server to close the violating connection")
	}

	good := dialTCP(t, s)
	fmt.Fprintf(good, "<13>ok line\n")
	testutil.WaitUntil(t, 5*time.Second, func() bool { return sink.total.Load() == 1 },
		"line on healthy conn not published")
	if st := s.Stats(); st.FrameErrors != 1 {
		t.Fatalf("FrameErrors = %d, want 1", st.FrameErrors)
	}
}

// TestServiceUDPShedsOverRate: UDP has no flow control, so datagrams over
// the tenant rate are shed with reason "rate", accounted in metrics, the
// per-tenant stats, and the flight recorder — and the balance closes.
func TestServiceUDPShedsOverRate(t *testing.T) {
	reg := metrics.NewRegistry()
	fc := clock.NewFake()
	events := obs.NewFlightRecorder(fc, 64)
	sink := newCollector()
	s := startService(t, Config{
		SyslogUDP: "127.0.0.1:0", TenantRate: 5, TenantBurst: 5,
		Clock: fc, Metrics: reg, Events: events,
	}, sink)

	conn, err := net.Dial("udp", s.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const n = 20
	for i := 0; i < n; i++ {
		fmt.Fprintf(conn, "<13>Feb  5 17:32:18 web01 app: dgram %d", i)
		// UDP delivery is async; wait until the datagram is accounted
		// before sending the next so none are lost in the kernel.
		want := uint64(i + 1)
		testutil.WaitUntil(t, 5*time.Second, func() bool {
			return s.Stats().Accepted == want
		}, "datagram not accounted")
	}
	st := s.Stats()
	if st.Accepted != n {
		t.Fatalf("accepted %d, want %d", st.Accepted, n)
	}
	// Fake clock never advances: exactly the burst is admitted.
	testutil.WaitUntil(t, 5*time.Second, func() bool { return sink.total.Load() == 5 },
		"burst lines not published")
	if st.Shed != n-5 {
		t.Fatalf("shed %d, want %d", st.Shed, n-5)
	}
	if got := reg.Snapshot().Counter("intake_lines_shed_total", "reason", ShedRate); got != n-5 {
		t.Fatalf("intake_lines_shed_total{reason=rate} = %d, want %d", got, n-5)
	}
	if got := reg.Snapshot().Counter("intake_tenant_shed_total", "reason", ShedRate, "tenant", "web01"); got != n-5 {
		t.Fatalf("intake_tenant_shed_total{rate,web01} = %d, want %d", got, n-5)
	}
	shedEvents := events.Events(obs.EventQuery{Type: obs.EventIntakeShed})
	if len(shedEvents) != n-5 {
		t.Fatalf("flight recorder shed events = %d, want %d", len(shedEvents), n-5)
	}
	if ev := shedEvents[0]; ev.Source != "web01" || ev.Detail != ShedRate {
		t.Fatalf("shed event = %+v, want tenant web01 reason rate", ev)
	}
	// Conservation at the front door: accepted == published + shed.
	if st.Accepted != st.Published+st.Shed {
		t.Fatalf("conservation broken: accepted %d != published %d + shed %d",
			st.Accepted, st.Published, st.Shed)
	}
}

// TestServiceTCPBackpressure: a TCP sender over its rate is not shed —
// the read loop stops taking lines until tokens refill, so admission
// tracks the fake clock exactly and nothing is lost.
func TestServiceTCPBackpressure(t *testing.T) {
	fc := clock.NewFake()
	sink := newCollector()
	s := startService(t, Config{
		SyslogTCP: "127.0.0.1:0", TenantRate: 10, TenantBurst: 10,
		Clock: fc, Metrics: metrics.NewRegistry(),
	}, sink)

	conn := dialTCP(t, s)
	const n = 50
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		fmt.Fprintf(&buf, "<13>Feb  5 17:32:18 web01 app: line %d\n", i)
	}
	if _, err := conn.Write(buf.Bytes()); err != nil {
		t.Fatal(err)
	}

	// Burst of 10 flows immediately; the handler then parks in the rate
	// wait with the 11th line in hand.
	testutil.WaitUntil(t, 5*time.Second, func() bool { return sink.total.Load() == 10 },
		"burst not published")
	if got := sink.total.Load(); got != 10 {
		t.Fatalf("published %d before clock advance, want exactly the burst 10", got)
	}
	// Each second of fake time releases another 10 lines — no sheds.
	for want := uint64(20); want <= n; want += 10 {
		fc.Advance(time.Second)
		testutil.WaitUntil(t, 5*time.Second, func() bool { return sink.total.Load() >= want },
			"refill did not release lines")
	}
	st := s.Stats()
	if st.Shed != 0 {
		t.Fatalf("TCP backpressure shed %d lines; must shed none", st.Shed)
	}
	if st.Published != n {
		t.Fatalf("published %d, want %d", st.Published, n)
	}
}

// TestServiceQueueBoundedAndSheds: with the pump's downstream blocked,
// the queue fills to exactly its bound; UDP arrivals beyond it shed with
// reason "queue" and memory does not grow.
func TestServiceQueueBoundedAndSheds(t *testing.T) {
	reg := metrics.NewRegistry()
	sink := newCollector()
	sink.block = make(chan struct{})
	const depth = 8
	s := startService(t, Config{
		SyslogUDP: "127.0.0.1:0", QueueDepth: depth, Metrics: reg,
	}, sink)

	conn, err := net.Dial("udp", s.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// depth lines fill the queue, +1 sits blocked inside the pump's
	// publish call; everything past that must shed.
	const n = depth + 10
	for i := 0; i < n; i++ {
		fmt.Fprintf(conn, "<13>line %d", i)
		want := uint64(i + 1)
		testutil.WaitUntil(t, 5*time.Second, func() bool {
			return s.Stats().Accepted == want
		}, "datagram not accounted")
	}
	st := s.Stats()
	if st.QueueDepth > depth {
		t.Fatalf("queue depth %d exceeds bound %d", st.QueueDepth, depth)
	}
	if st.Shed != n-depth-1 {
		t.Fatalf("shed %d, want %d (queue %d + 1 in-flight publish)", st.Shed, n-depth-1, depth)
	}
	if got := reg.Snapshot().Counter("intake_lines_shed_total", "reason", ShedQueue); got != st.Shed {
		t.Fatalf("intake_lines_shed_total{reason=queue} = %d, want %d", got, st.Shed)
	}
	close(sink.block)
	testutil.WaitUntil(t, 5*time.Second, func() bool {
		return sink.total.Load() == depth+1
	}, "queued lines not drained after unblock")
	if st := s.Stats(); st.Accepted != st.Published+st.Shed {
		t.Fatalf("conservation broken: %+v", st)
	}
}

// TestServiceHTTPIngest: the bulk endpoint admits what the rate allows,
// reports the split, and 429s an all-shed batch.
func TestServiceHTTPIngest(t *testing.T) {
	fc := clock.NewFake()
	sink := newCollector()
	s := startService(t, Config{
		HTTP: "127.0.0.1:0", TenantRate: 10, TenantBurst: 10,
		Clock: fc, Metrics: metrics.NewRegistry(),
	}, sink)

	post := func(body string) (int, IngestResponse) {
		t.Helper()
		resp, err := http.Post("http://"+s.HTTPAddr()+"/api/ingest", "application/json",
			bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ir IngestResponse
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, ir
	}

	code, ir := post(`{"tenant":"api1","lines":["l1","l2","l3"]}`)
	if code != http.StatusOK || ir.Accepted != 3 || ir.Shed != 0 {
		t.Fatalf("first batch: code %d resp %+v", code, ir)
	}
	// 7 tokens left: a 12-line batch splits 7 admitted / 5 shed.
	code, ir = post(`{"tenant":"api1","lines":["a","b","c","d","e","f","g","h","i","j","k","l"]}`)
	if code != http.StatusOK || ir.Accepted != 7 || ir.ShedRate != 5 {
		t.Fatalf("partial batch: code %d resp %+v", code, ir)
	}
	// Bucket empty: all-shed is 429.
	code, ir = post(`{"tenant":"api1","lines":["x"]}`)
	if code != http.StatusTooManyRequests || ir.Accepted != 0 || ir.ShedRate != 1 {
		t.Fatalf("over-rate batch: code %d resp %+v", code, ir)
	}
	// Other tenants are untouched by api1's exhaustion.
	code, ir = post(`{"tenant":"api2","lines":["y"]}`)
	if code != http.StatusOK || ir.Accepted != 1 {
		t.Fatalf("other tenant: code %d resp %+v", code, ir)
	}
	if code, _ := post(`not json`); code != http.StatusBadRequest {
		t.Fatalf("bad JSON: code %d, want 400", code)
	}
	if code, _ := post(`{"lines":[]}`); code != http.StatusBadRequest {
		t.Fatalf("empty batch: code %d, want 400", code)
	}
	testutil.WaitUntil(t, 5*time.Second, func() bool { return sink.total.Load() == 11 },
		"admitted lines not published")
	if got := sink.lines("api1"); len(got) != 10 {
		t.Fatalf("api1 published %d lines, want 10", len(got))
	}
}

// TestServiceStalledReaderIsolation: a peer that sends half a frame and
// goes silent parks one goroutine; the accept loop and every other
// connection keep full service.
func TestServiceStalledReaderIsolation(t *testing.T) {
	sink := newCollector()
	s := startService(t, Config{SyslogTCP: "127.0.0.1:0", Metrics: metrics.NewRegistry()}, sink)

	stalled := dialTCP(t, s)
	// Half an octet-counted frame: the server read loop now waits for
	// bytes that never come.
	fmt.Fprintf(stalled, "100 only the start of the payload")

	// Ten healthy connections must be completely unaffected.
	for i := 0; i < 10; i++ {
		c := dialTCP(t, s)
		fmt.Fprintf(c, "<13>healthy line %d\n", i)
		c.Close()
	}
	testutil.WaitUntil(t, 5*time.Second, func() bool { return sink.total.Load() == 10 },
		"healthy conns starved by a stalled peer")
}

// TestServiceConnCap: connections beyond MaxConns are refused and
// counted; the service stays bounded instead of accepting unboundedly.
func TestServiceConnCap(t *testing.T) {
	sink := newCollector()
	s := startService(t, Config{
		SyslogTCP: "127.0.0.1:0", MaxConns: 4, Metrics: metrics.NewRegistry(),
	}, sink)

	var held []net.Conn
	for i := 0; i < 4; i++ {
		c := dialTCP(t, s)
		// Park each conn with a partial frame so it stays open.
		fmt.Fprintf(c, "50 partial")
		held = append(held, c)
	}
	testutil.WaitUntil(t, 5*time.Second, func() bool { return s.Stats().ActiveConns == 4 },
		"held conns not active")
	testutil.WaitUntil(t, 5*time.Second, func() bool {
		c, err := net.Dial("tcp", s.TCPAddr())
		if err != nil {
			return true
		}
		defer c.Close()
		// Rejection may lag the dial by one accept-loop pass; a served
		// conn would block in read, a rejected one closes promptly.
		c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		_, err = c.Read(make([]byte, 1))
		return err != nil && s.Stats().ConnsRejected > 0
	}, "connection beyond the cap was not refused")
	for _, c := range held {
		c.Close()
	}
}

// TestServiceGracefulShutdownDrains: Shutdown stops the listeners, lets
// in-flight connections finish their buffered frames, drains the queue,
// and leaves the balance closed with nothing shed.
func TestServiceGracefulShutdownDrains(t *testing.T) {
	sink := newCollector()
	s := startService(t, Config{SyslogTCP: "127.0.0.1:0", Metrics: metrics.NewRegistry()}, sink)

	conn := dialTCP(t, s)
	const n = 100
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		fmt.Fprintf(&buf, "<13>line %d\n", i)
	}
	if _, err := conn.Write(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	// Wait until the lines are at least accepted so the shutdown has
	// something in flight to drain.
	testutil.WaitUntil(t, 5*time.Second, func() bool { return s.Stats().Accepted == n },
		"lines not accepted before shutdown")

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Published != n || st.Shed != 0 {
		t.Fatalf("after drain: published %d shed %d, want %d/0", st.Published, st.Shed, n)
	}
	if sink.total.Load() != n {
		t.Fatalf("sink saw %d lines, want %d", sink.total.Load(), n)
	}
	// The listener is gone.
	if _, err := net.DialTimeout("tcp", s.TCPAddr(), time.Second); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}

// TestServiceCloseShedsBlockedAdmissions: Close (the crash path) aborts a
// handler parked in the rate wait; the parked line is accounted as shed
// with reason "shutdown", so even an abort closes the balance.
func TestServiceCloseShedsBlockedAdmissions(t *testing.T) {
	fc := clock.NewFake()
	reg := metrics.NewRegistry()
	sink := newCollector()
	s := startService(t, Config{
		SyslogTCP: "127.0.0.1:0", TenantRate: 1, TenantBurst: 1,
		Clock: fc, Metrics: reg,
	}, sink)

	conn := dialTCP(t, s)
	fmt.Fprintf(conn, "<13>first\n<13>second\n")
	// First line consumes the burst; the second parks in the rate wait.
	testutil.WaitUntil(t, 5*time.Second, func() bool { return s.Stats().Accepted == 2 },
		"second line not accepted")
	if err := s.Close(); err == nil {
		t.Fatal("Close with a parked admission should report shed lines")
	}
	st := s.Stats()
	if st.Accepted != st.Published+st.Shed {
		t.Fatalf("conservation broken across abort: %+v", st)
	}
	if got := reg.Snapshot().Counter("intake_lines_shed_total", "reason", ShedShutdown); got != st.Shed || st.Shed == 0 {
		t.Fatalf("shutdown sheds: counter %d, stats %d, want equal and nonzero", got, st.Shed)
	}
}

// TestServiceThousandConnections is the acceptance-criteria load shape:
// ≥1000 concurrent TCP connections streaming into a small bounded queue.
// The queue must never exceed its bound and the balance must close —
// bounded memory regardless of connection count.
func TestServiceThousandConnections(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-connection load test skipped in -short")
	}
	const (
		conns        = 1000
		linesPerConn = 5
		depth        = 64
	)
	reg := metrics.NewRegistry()
	sink := newCollector()
	s := startService(t, Config{
		SyslogTCP: "127.0.0.1:0", QueueDepth: depth, MaxConns: conns + 10,
		Metrics: reg,
	}, sink)

	var wg sync.WaitGroup
	var dialErrs atomic.Uint64
	start := make(chan struct{})
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			<-start
			c, err := net.Dial("tcp", s.TCPAddr())
			if err != nil {
				dialErrs.Add(1)
				return
			}
			defer c.Close()
			var buf bytes.Buffer
			for j := 0; j < linesPerConn; j++ {
				fmt.Fprintf(&buf, "<13>Feb  5 17:32:18 host%03d app: line %d\n", id%50, j)
			}
			if _, err := c.Write(buf.Bytes()); err != nil {
				dialErrs.Add(1)
			}
		}(i)
	}
	close(start)

	// While the flood runs, the queue must stay within its bound.
	probeDone := make(chan struct{})
	var maxDepth atomic.Int64
	go func() {
		defer close(probeDone)
		for {
			select {
			case <-probeDone:
				return
			default:
			}
			if d := int64(s.Stats().QueueDepth); d > maxDepth.Load() {
				maxDepth.Store(d)
			}
			if sink.total.Load() >= conns*linesPerConn {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	if n := dialErrs.Load(); n > 0 {
		t.Fatalf("%d connections failed to dial/write", n)
	}
	want := uint64(conns * linesPerConn)
	testutil.WaitUntil(t, 60*time.Second, func() bool { return sink.total.Load() == want },
		"flood lines not all published")
	<-probeDone
	if d := maxDepth.Load(); d > depth {
		t.Fatalf("queue depth reached %d, bound is %d", d, depth)
	}
	st := s.Stats()
	if st.Accepted != want || st.Shed != 0 {
		t.Fatalf("accepted %d shed %d, want %d/0 (TCP backpressure, no rate limit)",
			st.Accepted, st.Shed, want)
	}
	if st.Accepted != st.Published+st.Shed {
		t.Fatalf("conservation broken: %+v", st)
	}
}

// FuzzIngestJSON: arbitrary request bodies against the ingest handler
// must never panic the listener, and any 200 response must keep the
// accepted+shed split consistent with the request.
func FuzzIngestJSON(f *testing.F) {
	f.Add([]byte(`{"tenant":"t","lines":["a","b"]}`))
	f.Add([]byte(`{"lines":["only"]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"tenant":123,"lines":"wrong types"}`))
	f.Add([]byte(`{"tenant":"` + "\x00\xff" + `","lines":[""]}`))
	f.Add([]byte(`[1,2,3]`))

	sink := newCollector()
	s := New(Config{HTTP: "127.0.0.1:0", Metrics: metrics.NewRegistry()}, sink.publish)
	if err := s.Start(); err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { s.Close() })
	client := &http.Client{Timeout: 10 * time.Second}
	url := "http://" + s.HTTPAddr() + "/api/ingest"

	f.Fuzz(func(t *testing.T, body []byte) {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("listener died: %v", err)
		}
		defer resp.Body.Close()
		var ir IngestResponse
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
			t.Fatalf("non-JSON response (%d): %v", resp.StatusCode, err)
		}
		if resp.StatusCode == http.StatusOK && ir.Accepted == 0 {
			t.Fatalf("200 with zero accepted: %+v", ir)
		}
		if ir.Shed != ir.ShedRate+ir.ShedQueue {
			t.Fatalf("shed split inconsistent: %+v", ir)
		}
	})
}
