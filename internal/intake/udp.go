package intake

// maxUDPDatagram is the largest syslog datagram we read; RFC 5426 caps
// practical payloads well below this.
const maxUDPDatagram = 64 * 1024

// runUDP is the syslog-UDP read loop. One datagram is one message (RFC
// 5426); there is no flow control to lean on, so over-rate or over-queue
// datagrams are shed with accounting rather than blocked on — blocking
// would just move the loss into the kernel's socket buffer, unaccounted.
func (s *Service) runUDP() {
	defer s.producerExit()
	buf := make([]byte, maxUDPDatagram)
	for {
		n, _, err := s.udpConn.ReadFrom(buf)
		if err != nil {
			select {
			case <-s.closing:
			default:
				s.udpDead.Store(true)
			}
			return
		}
		if n == 0 {
			continue
		}
		frame := trimTrailingNewlines(buf[:n])
		if len(frame) == 0 {
			continue
		}
		s.bytesTotal.Add(uint64(len(frame)))
		tenant, payload := s.resolveSyslog(frame)
		ts := s.tenant(tenant)
		s.accept(ts, 1)
		s.admitDropping(tenant, ts, payload)
	}
}

// trimTrailingNewlines strips trailing \n/\r some senders append to
// datagrams.
func trimTrailingNewlines(b []byte) []byte {
	for len(b) > 0 && (b[len(b)-1] == '\n' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}
