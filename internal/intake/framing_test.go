package intake

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
)

// scanAll runs the frame scanner over input and returns every frame plus
// the terminal error.
func scanAll(input string, max int) ([]string, error) {
	sc := NewFrameScanner(strings.NewReader(input), max)
	var frames []string
	for sc.Scan() {
		frames = append(frames, sc.Text())
	}
	return frames, sc.Err()
}

func TestFramingNewline(t *testing.T) {
	frames, err := scanAll("<34>one\n<34>two\r\n<34>three", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<34>one", "<34>two", "<34>three"}
	if fmt.Sprint(frames) != fmt.Sprint(want) {
		t.Errorf("frames = %q, want %q", frames, want)
	}
}

func TestFramingOctetCounted(t *testing.T) {
	frames, err := scanAll("7 <34>abc11 <34>defghij", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<34>abc", "<34>defghij"}
	if fmt.Sprint(frames) != fmt.Sprint(want) {
		t.Errorf("frames = %q, want %q", frames, want)
	}
}

func TestFramingMixedTransports(t *testing.T) {
	// RFC 6587 servers must take the transport per frame: a newline frame
	// followed by an octet-counted one and back.
	frames, err := scanAll("<34>newline framed\n9 <34>octet<34>newline again\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<34>newline framed", "<34>octet", "<34>newline again"}
	if fmt.Sprint(frames) != fmt.Sprint(want) {
		t.Errorf("frames = %q, want %q", frames, want)
	}
}

func TestFramingOctetPayloadWithNewlines(t *testing.T) {
	// Octet counting exists so payloads may contain raw newlines.
	frames, err := scanAll("10 <34>a\nb\r\nc4 <34>", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<34>a\nb\r\nc", "<34>"}
	if fmt.Sprint(frames) != fmt.Sprint(want) {
		t.Errorf("frames = %q, want %q", frames, want)
	}
}

func TestFramingErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
		max   int
	}{
		{"oversized newline frame", strings.Repeat("x", 100), 64},
		{"oversized octet count", "500 hello", 64},
		{"octet count too long", "9999999999 x", 0},
		{"truncated octet frame", "10 short", 0},
		{"truncated count", "123", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frames, err := scanAll(tc.input, tc.max)
			if err == nil {
				t.Fatalf("scanAll(%q) = %q, want frame error", tc.input, frames)
			}
			if !IsFrameError(err) {
				t.Fatalf("scanAll(%q) error %v is not a frame error", tc.input, err)
			}
		})
	}
}

func TestFramingFinalUnterminated(t *testing.T) {
	frames, err := scanAll("<34>complete\n<34>no trailing newline", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 || frames[1] != "<34>no trailing newline" {
		t.Errorf("frames = %q, want final unterminated frame delivered", frames)
	}
}

func TestFramingSeparatorsOnly(t *testing.T) {
	frames, err := scanAll("\n\r\n\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 0 {
		t.Errorf("frames = %q, want none for separators only", frames)
	}
}

// TestFramingDribble: frames arriving one byte at a time (the slow-link
// case) must assemble identically to a single write.
func TestFramingDribble(t *testing.T) {
	input := "7 <34>abc<34>newline\n11 <34>payload"
	sc := NewFrameScanner(iotest1ByteReader{strings.NewReader(input)}, 0)
	var frames []string
	for sc.Scan() {
		frames = append(frames, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	want := []string{"<34>abc", "<34>newline", "<34>payload"}
	if fmt.Sprint(frames) != fmt.Sprint(want) {
		t.Errorf("frames = %q, want %q", frames, want)
	}
}

type iotest1ByteReader struct{ r io.Reader }

func (r iotest1ByteReader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	return r.r.Read(p[:1])
}

// FuzzOctetCountedFraming: arbitrary byte streams may produce frames or a
// frame error but never a panic, an over-cap frame, or a lost byte
// budget (the scanner must always terminate).
func FuzzOctetCountedFraming(f *testing.F) {
	f.Add([]byte("7 <34>abc"))
	f.Add([]byte("<34>newline\n"))
	f.Add([]byte("999999999 x"))
	f.Add([]byte("3 ab"))
	f.Add([]byte("0 "))
	f.Add([]byte("00000000000000007 payload"))
	f.Add([]byte("\n\r\n12 <34>a\nb\r\nc"))
	f.Fuzz(func(t *testing.T, data []byte) {
		const max = 512
		sc := NewFrameScanner(bytes.NewReader(data), max)
		total := 0
		for sc.Scan() {
			if n := len(sc.Bytes()); n > max {
				t.Fatalf("frame of %d bytes exceeds cap %d", n, max)
			}
			total += len(sc.Bytes())
			if total > len(data) {
				t.Fatalf("frames total %d bytes from %d input bytes", total, len(data))
			}
		}
		if err := sc.Err(); err != nil && !IsFrameError(err) {
			t.Fatalf("non-frame error from in-memory stream: %v", err)
		}
	})
}
