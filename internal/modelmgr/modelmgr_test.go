package modelmgr

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"loglens/internal/bus"
	"loglens/internal/logtypes"
	"loglens/internal/seqdetect"
	"loglens/internal/store"
)

var base = time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)

func stamp(t time.Time) string { return t.Format("2006/01/02 15:04:05.000") }

// corpus builds a simple two-step workflow training corpus.
func corpus(events int) []logtypes.Log {
	var out []logtypes.Log
	seq := uint64(0)
	for i := 0; i < events; i++ {
		id := fmt.Sprintf("ev-%05d", i)
		t0 := base.Add(time.Duration(i*10) * time.Second)
		for _, raw := range []string{
			fmt.Sprintf("%s task %s start prio %d", stamp(t0), id, i%5),
			fmt.Sprintf("%s task %s done code %d", stamp(t0.Add(2*time.Second)), id, i%3),
		} {
			seq++
			out = append(out, logtypes.Log{Source: "tasks", Seq: seq, Raw: raw, Arrival: t0})
		}
	}
	return out
}

func TestBuildFullModel(t *testing.T) {
	b := NewBuilder(BuilderConfig{})
	m, report, err := b.Build("m1", corpus(200))
	if err != nil {
		t.Fatal(err)
	}
	if report.Patterns != 2 {
		t.Fatalf("patterns = %d", report.Patterns)
	}
	if report.Automata != 1 {
		t.Fatalf("automata = %d", report.Automata)
	}
	if report.CoveredPatterns != 2 {
		t.Errorf("covered = %d", report.CoveredPatterns)
	}
	if report.UnparsedTraining != 0 {
		t.Errorf("unparsed = %d", report.UnparsedTraining)
	}
	if report.TrainingLogs != 400 {
		t.Errorf("training logs = %d", report.TrainingLogs)
	}
	if report.Elapsed <= 0 {
		t.Error("elapsed not measured")
	}
	if m.ID != "m1" || m.CreatedAt.IsZero() {
		t.Errorf("model meta: id=%q createdAt=%v", m.ID, m.CreatedAt)
	}
	// The built model is immediately usable end to end.
	p := m.NewParser(nil)
	det := m.NewDetector(seqdetect.Config{})
	for _, l := range corpus(3) {
		pl, err := p.Parse(l)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if recs := det.Process(pl); len(recs) != 0 {
			t.Fatalf("normal trace flagged: %+v", recs)
		}
	}
}

func TestBuildSkipSequence(t *testing.T) {
	b := NewBuilder(BuilderConfig{SkipSequence: true})
	m, report, err := b.Build("p-only", corpus(50))
	if err != nil {
		t.Fatal(err)
	}
	if report.Automata != 0 || len(m.Sequence.Automata) != 0 {
		t.Error("sequence model must be empty with SkipSequence")
	}
	if report.Patterns != 2 {
		t.Errorf("patterns = %d", report.Patterns)
	}
}

func TestBuildEmptyCorpus(t *testing.T) {
	b := NewBuilder(BuilderConfig{})
	if _, _, err := b.Build("x", nil); err == nil {
		t.Error("empty corpus must fail")
	}
}

func TestModelJSONRoundTrip(t *testing.T) {
	b := NewBuilder(BuilderConfig{})
	m, _, err := b.Build("m1", corpus(100))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var m2 Model
	if err := json.Unmarshal(data, &m2); err != nil {
		t.Fatal(err)
	}
	if m2.ID != m.ID || m2.Patterns.Len() != m.Patterns.Len() || len(m2.Sequence.Automata) != len(m.Sequence.Automata) {
		t.Errorf("round trip mismatch")
	}
	// The stored form is human-editable GROK text.
	var generic map[string]any
	json.Unmarshal(data, &generic)
	if _, ok := generic["patterns"]; !ok {
		t.Error("patterns missing from JSON")
	}
}

func TestModelCloneIsolation(t *testing.T) {
	b := NewBuilder(BuilderConfig{})
	m, _, err := b.Build("m1", corpus(100))
	if err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	c.Sequence.Delete(c.Sequence.Automata[0].ID)
	for _, p := range c.Patterns.Patterns() {
		c.Patterns.Delete(p.ID)
	}
	if len(m.Sequence.Automata) != 1 || m.Patterns.Len() != 2 {
		t.Error("Clone shares state with the original")
	}
}

func TestManagerSaveLoadList(t *testing.T) {
	st := store.New()
	builder := NewBuilder(BuilderConfig{})
	mgr := NewManager(st, builder)

	m1, _, err := builder.Build("m1", corpus(50))
	if err != nil {
		t.Fatal(err)
	}
	m1.CreatedAt = base
	if err := mgr.Save(m1); err != nil {
		t.Fatal(err)
	}
	m2 := m1.Clone()
	m2.ID = "m2"
	m2.CreatedAt = base.Add(time.Hour)
	if err := mgr.Save(m2); err != nil {
		t.Fatal(err)
	}

	loaded, err := mgr.Load("m1")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Patterns.Len() != m1.Patterns.Len() {
		t.Error("loaded model differs")
	}
	if _, err := mgr.Load("missing"); err == nil {
		t.Error("missing model must fail")
	}

	ids := mgr.List()
	if len(ids) != 2 || ids[0] != "m2" {
		t.Errorf("List = %v (newest first)", ids)
	}
	latest, err := mgr.Latest()
	if err != nil || latest.ID != "m2" {
		t.Errorf("Latest = %v, %v", latest, err)
	}
	if !mgr.Delete("m1") || mgr.Delete("m1") {
		t.Error("Delete semantics")
	}
}

func TestManagerLatestEmpty(t *testing.T) {
	mgr := NewManager(store.New(), NewBuilder(BuilderConfig{}))
	if _, err := mgr.Latest(); err == nil {
		t.Error("empty storage must fail")
	}
}

func TestRebuildFromLogStorage(t *testing.T) {
	st := store.New()
	builder := NewBuilder(BuilderConfig{})
	mgr := NewManager(st, builder)

	// Archive logs the way the log manager does.
	ix := st.Index(LogsIndexFor("tasks"))
	for _, l := range corpus(100) {
		ix.PutAuto(store.Document{"raw": l.Raw, "seq": l.Seq, "arrival": l.Arrival, "source": l.Source})
	}

	m, report, err := mgr.Rebuild("rebuilt", "tasks", base.Add(-time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if report.Patterns != 2 {
		t.Errorf("patterns = %d", report.Patterns)
	}
	// Saved automatically.
	if _, err := mgr.Load("rebuilt"); err != nil {
		t.Errorf("rebuilt model not saved: %v", err)
	}
	// Window excludes everything -> error.
	if _, _, err := mgr.Rebuild("r2", "tasks", base.Add(1000*time.Hour)); err == nil {
		t.Error("empty window must fail")
	}
	_ = m
}

func TestRelearnLoop(t *testing.T) {
	st := store.New()
	builder := NewBuilder(BuilderConfig{})
	mgr := NewManager(st, builder)
	ix := st.Index(LogsIndexFor("tasks"))
	for _, l := range corpus(50) {
		ix.PutAuto(store.Document{"raw": l.Raw, "seq": l.Seq, "arrival": time.Now(), "source": l.Source})
	}

	var mu sync.Mutex
	installed := 0
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		mgr.RelearnLoop(ctx, "tasks", 10*time.Millisecond, time.Hour, func(m *Model) {
			mu.Lock()
			installed++
			mu.Unlock()
		})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := installed
		mu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("relearn loop never installed a model")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done
}

func TestControllerAnnounceWatch(t *testing.T) {
	b := bus.New()
	c, err := NewController(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Announce(Instruction{Op: "bogus", ModelID: "x"}); err == nil {
		t.Error("invalid op must fail")
	}

	var mu sync.Mutex
	var got []Instruction
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- c.Watch(ctx, "watchers", func(ins Instruction) {
			mu.Lock()
			got = append(got, ins)
			mu.Unlock()
		})
	}()

	want := []Instruction{
		{Op: OpAdd, ModelID: "m1"},
		{Op: OpUpdate, ModelID: "m1", Source: "web"},
		{Op: OpDelete, ModelID: "m1"},
	}
	for _, ins := range want {
		if err := c.Announce(ins); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == len(want) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watched %d of %d instructions", n, len(want))
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Errorf("Watch returned %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, ins := range want {
		if got[i] != ins {
			t.Errorf("instruction %d = %+v, want %+v", i, got[i], ins)
		}
	}
}

func TestUnmarshalEmptyModel(t *testing.T) {
	var m Model
	if err := json.Unmarshal([]byte(`{"id":"empty","createdAt":"2016-02-23T09:00:00Z"}`), &m); err != nil {
		t.Fatal(err)
	}
	if m.Patterns == nil || m.Sequence == nil {
		t.Error("nil sub-models after unmarshal")
	}
}
