package modelmgr

import (
	"context"
	"encoding/json"
	"fmt"

	"loglens/internal/bus"
	"loglens/internal/metrics"
)

// ControlTopic is the bus topic carrying model-control instructions.
const ControlTopic = "model-control"

// Op is a model-control operation (§II: "Models can be added or updated or
// deleted, and each operation needs a separate instruction").
type Op string

const (
	// OpAdd installs a model for a source that had none.
	OpAdd Op = "add"
	// OpUpdate replaces a running model (zero-downtime rebroadcast).
	OpUpdate Op = "update"
	// OpDelete removes a model; its detectors go idle.
	OpDelete Op = "delete"
)

// Instruction is one control message from the model manager to the
// anomaly detectors.
type Instruction struct {
	// Op is the operation.
	Op Op `json:"op"`
	// ModelID names the model in the model storage.
	ModelID string `json:"modelId"`
	// Source scopes the instruction to one log source ("" = all).
	Source string `json:"source,omitempty"`
}

// Controller relays control instructions over the bus: the model manager
// notifies it of model changes, and running detectors watch for
// instructions and act on them.
type Controller struct {
	bus bus.Broker
	reg *metrics.Registry
}

// NewController constructs a Controller, declaring the control topic.
func NewController(b bus.Broker) (*Controller, error) {
	if err := b.CreateTopic(ControlTopic, 1); err != nil {
		return nil, err
	}
	return &Controller{bus: b}, nil
}

// SetMetrics installs a registry counting announced instructions by op
// (modelmgr_announced_total). Announcements are rare control-plane events,
// so the per-op counter is resolved on each call.
func (c *Controller) SetMetrics(reg *metrics.Registry) { c.reg = reg }

// Announce publishes one control instruction.
func (c *Controller) Announce(ins Instruction) error {
	if ins.Op != OpAdd && ins.Op != OpUpdate && ins.Op != OpDelete {
		return fmt.Errorf("modelmgr: invalid control op %q", ins.Op)
	}
	data, err := json.Marshal(ins)
	if err != nil {
		return err
	}
	_, _, err = c.bus.Publish(ControlTopic, ins.ModelID, data, map[string]string{"kind": "control"})
	if err == nil && c.reg != nil {
		c.reg.Counter("modelmgr_announced_total", "op", string(ins.Op)).Inc()
	}
	return err
}

// Watch delivers control instructions to fn until the context is done.
// Each watcher group sees every instruction once.
func (c *Controller) Watch(ctx context.Context, group string, fn func(Instruction)) error {
	consumer, err := c.bus.Subscribe(group, ControlTopic)
	if err != nil {
		return err
	}
	for {
		msgs, err := consumer.Poll(ctx, 0)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		for _, m := range msgs {
			var ins Instruction
			if err := json.Unmarshal(m.Value, &ins); err != nil {
				continue // malformed control messages are dropped
			}
			fn(ins)
		}
	}
}
