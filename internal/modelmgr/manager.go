package modelmgr

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"loglens/internal/clock"
	"loglens/internal/logtypes"
	"loglens/internal/metrics"
	"loglens/internal/obs"
	"loglens/internal/store"
)

// ModelsIndex is the model-storage index name.
const ModelsIndex = "models"

// Manager persists models in the model storage and supports the §II
// workflows: saving freshly built models, loading (possibly expert-edited)
// models back, and periodic relearning from the log storage ("users can
// configure LogLens to automatically instruct model builder every midnight
// to rebuild models using the last seven days logs").
type Manager struct {
	store   *store.Store
	builder *Builder
	clk     clock.Clock

	rebuilds       *metrics.Counter
	rebuildSeconds *metrics.Histogram
	saves          *metrics.Counter
	loads          *metrics.Counter

	events *obs.FlightRecorder
}

// NewManager constructs a Manager over the given storage.
func NewManager(st *store.Store, builder *Builder) *Manager {
	return &Manager{store: st, builder: builder, clk: clock.New()}
}

// SetClock injects the relearn-loop time source (default the wall clock).
// Set it before RelearnLoop starts.
func (mgr *Manager) SetClock(clk clock.Clock) { mgr.clk = clk }

// Instrument mirrors manager activity into reg: rebuild counts and
// durations (measured on the manager's clock), plus save/load counts. Call
// during wiring, before relearning starts.
func (mgr *Manager) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	mgr.rebuilds = reg.Counter("modelmgr_rebuilds_total")
	mgr.rebuildSeconds = reg.Histogram("modelmgr_rebuild_seconds", nil)
	mgr.saves = reg.Counter("modelmgr_saves_total")
	mgr.loads = reg.Counter("modelmgr_loads_total")
}

// SetRecorder installs a flight recorder capturing model-storage
// failures at the source; nil disables.
func (mgr *Manager) SetRecorder(f *obs.FlightRecorder) { mgr.events = f }

// Save stores a model in the model storage under its ID.
func (mgr *Manager) Save(m *Model) error {
	data, err := json.Marshal(m)
	if err != nil {
		mgr.events.Record(obs.EventStorageError, m.ID, "save: "+err.Error(), 0)
		return fmt.Errorf("modelmgr: save %q: %w", m.ID, err)
	}
	mgr.store.Index(ModelsIndex).Put(m.ID, store.Document{
		"id":        m.ID,
		"createdAt": m.CreatedAt,
		"patterns":  m.Patterns.Len(),
		"automata":  len(m.Sequence.Automata),
		"body":      string(data),
	})
	if mgr.saves != nil {
		mgr.saves.Inc()
	}
	return nil
}

// Load retrieves a model from the model storage.
func (mgr *Manager) Load(id string) (*Model, error) {
	doc, ok := mgr.store.Index(ModelsIndex).Get(id)
	if !ok {
		mgr.events.Record(obs.EventStorageError, id, "load: model not found", 0)
		return nil, fmt.Errorf("modelmgr: no model %q", id)
	}
	body, _ := doc["body"].(string)
	var m Model
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		mgr.events.Record(obs.EventStorageError, id, "load: "+err.Error(), 0)
		return nil, fmt.Errorf("modelmgr: load %q: %w", id, err)
	}
	if mgr.loads != nil {
		mgr.loads.Inc()
	}
	return &m, nil
}

// Delete removes a model from the model storage.
func (mgr *Manager) Delete(id string) bool {
	return mgr.store.Index(ModelsIndex).Delete(id)
}

// List returns the stored model IDs, newest first.
func (mgr *Manager) List() []string {
	hits := mgr.store.Index(ModelsIndex).Search(store.Query{SortBy: "createdAt", Desc: true})
	out := make([]string, 0, len(hits))
	for _, h := range hits {
		if id, ok := h.Doc["id"].(string); ok {
			out = append(out, id)
		}
	}
	return out
}

// Latest returns the most recently created model.
func (mgr *Manager) Latest() (*Model, error) {
	ids := mgr.List()
	if len(ids) == 0 {
		return nil, fmt.Errorf("modelmgr: model storage is empty")
	}
	return mgr.Load(ids[0])
}

// LogsIndexFor is the log-storage index naming scheme: logs are organized
// by source (§II: the log storage "organizes logs based on the log source
// information").
func LogsIndexFor(source string) string { return "logs-" + source }

// Rebuild builds a fresh model for a source from the logs stored since the
// given time, saves it, and returns it — one periodic relearning round
// (handling data drift, §II-A).
func (mgr *Manager) Rebuild(id, source string, since time.Time) (*Model, *BuildReport, error) {
	hits := mgr.store.Index(LogsIndexFor(source)).Search(store.Query{
		RangeField: "arrival",
		RangeMin:   since,
		SortBy:     "seq",
	})
	logs := make([]logtypes.Log, 0, len(hits))
	for _, h := range hits {
		raw, _ := h.Doc["raw"].(string)
		seq, _ := h.Doc["seq"].(uint64)
		arrival, _ := h.Doc["arrival"].(time.Time)
		logs = append(logs, logtypes.Log{Source: source, Raw: raw, Seq: seq, Arrival: arrival})
	}
	if len(logs) == 0 {
		return nil, nil, fmt.Errorf("modelmgr: rebuild %q: no stored logs for source %q since %v", id, source, since)
	}
	start := mgr.clk.Now()
	m, report, err := mgr.builder.Build(id, logs)
	if err != nil {
		return nil, nil, err
	}
	if err := mgr.Save(m); err != nil {
		return nil, nil, err
	}
	if mgr.rebuilds != nil {
		mgr.rebuilds.Inc()
		mgr.rebuildSeconds.Observe(mgr.clk.Since(start).Seconds())
	}
	return m, report, nil
}

// RelearnLoop rebuilds the model for a source every interval, using the
// logs from the trailing window, and hands each new model to install
// (typically the model controller's update path). It blocks until the
// context is done.
func (mgr *Manager) RelearnLoop(ctx context.Context, source string, interval, window time.Duration, install func(*Model)) {
	ticker := mgr.clk.NewTicker(interval)
	defer ticker.Stop()
	n := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C():
			n++
			id := fmt.Sprintf("%s-relearn-%d", source, n)
			m, _, err := mgr.Rebuild(id, source, mgr.clk.Now().Add(-window))
			if err != nil {
				continue // no logs yet; try next round
			}
			install(m)
		}
	}
}
