package modelmgr

import (
	"fmt"
	"sort"

	"loglens/internal/grok"
	"loglens/internal/logmine"
	"loglens/internal/logtypes"
	"loglens/internal/preprocess"
)

// AcceptNormal extends the model with patterns learned from logs a human
// reviewed and marked as normal — the paper's closing lesson (§VIII): "we
// have to provide options to users for incorporating their domain
// knowledge ... as well as allow them to edit automatically generated
// models". Unparsed-log anomalies that an operator accepts stop being
// anomalies: their shapes are clustered and added to the pattern set.
// It returns the number of patterns added. The model is modified in place;
// install it through the controller for a zero-downtime rollout.
func (m *Model) AcceptNormal(lines []string, pp *preprocess.Preprocessor, cfg logmine.Config) (int, error) {
	if len(lines) == 0 {
		return 0, nil
	}
	if pp == nil {
		pp = preprocess.New(nil, nil)
	}
	clusterer := logmine.New(cfg)
	for _, line := range lines {
		if line == "" {
			continue
		}
		r := pp.Process(line)
		clusterer.Add(r.Tokens, r.Types)
	}
	discovered := clusterer.Patterns()

	// Only genuinely new shapes join the model: a line that already
	// parses under the existing patterns needs no new pattern.
	p := m.NewParser(pp.Clone())
	added := 0
	for _, pat := range discovered.Patterns() {
		// Probe with the cluster's own rendering: if any accepted
		// line parses already, skip this cluster.
		novel := false
		for _, line := range lines {
			r := pp.Clone().Process(line)
			if pat.Matches(r.Tokens) {
				if _, err := p.Parse(logtypes.Log{Raw: line}); err != nil {
					novel = true
				}
				break
			}
		}
		if !novel {
			continue
		}
		clone := pat.Clone()
		clone.ID = 0 // the set assigns the next free ID
		m.Patterns.Add(clone)
		clone.ApplyHeuristicNames()
		added++
	}
	if added == 0 {
		return 0, nil
	}
	return added, nil
}

// Diff describes how one model differs from another — the reviewer's view
// before installing a relearned model.
type Diff struct {
	// PatternsAdded and PatternsRemoved list GROK texts present in only
	// one model (matching by text, not ID: relearning renumbers).
	PatternsAdded, PatternsRemoved []string
	// AutomataAdded and AutomataRemoved list automata keys present in
	// only one model.
	AutomataAdded, AutomataRemoved []string
}

// Empty reports whether the models are behaviourally identical.
func (d Diff) Empty() bool {
	return len(d.PatternsAdded) == 0 && len(d.PatternsRemoved) == 0 &&
		len(d.AutomataAdded) == 0 && len(d.AutomataRemoved) == 0
}

// String renders the diff for the console.
func (d Diff) String() string {
	if d.Empty() {
		return "models are equivalent\n"
	}
	out := ""
	for _, s := range d.PatternsAdded {
		out += fmt.Sprintf("+ pattern  %s\n", s)
	}
	for _, s := range d.PatternsRemoved {
		out += fmt.Sprintf("- pattern  %s\n", s)
	}
	for _, s := range d.AutomataAdded {
		out += fmt.Sprintf("+ automaton %s\n", s)
	}
	for _, s := range d.AutomataRemoved {
		out += fmt.Sprintf("- automaton %s\n", s)
	}
	return out
}

// DiffModels compares old against new.
func DiffModels(oldM, newM *Model) Diff {
	var d Diff
	oldPats := map[string]bool{}
	for _, p := range oldM.Patterns.Patterns() {
		oldPats[patternShape(p.String())] = true
	}
	newPats := map[string]bool{}
	for _, p := range newM.Patterns.Patterns() {
		s := patternShape(p.String())
		newPats[s] = true
		if !oldPats[s] {
			d.PatternsAdded = append(d.PatternsAdded, p.String())
		}
	}
	for _, p := range oldM.Patterns.Patterns() {
		if !newPats[patternShape(p.String())] {
			d.PatternsRemoved = append(d.PatternsRemoved, p.String())
		}
	}

	oldAutos := map[string]bool{}
	for _, a := range oldM.Sequence.Automata {
		oldAutos[a.Key] = true
	}
	newAutos := map[string]bool{}
	for _, a := range newM.Sequence.Automata {
		newAutos[a.Key] = true
		if !oldAutos[a.Key] {
			d.AutomataAdded = append(d.AutomataAdded, a.Key)
		}
	}
	for _, a := range oldM.Sequence.Automata {
		if !newAutos[a.Key] {
			d.AutomataRemoved = append(d.AutomataRemoved, a.Key)
		}
	}
	sort.Strings(d.PatternsAdded)
	sort.Strings(d.PatternsRemoved)
	sort.Strings(d.AutomataAdded)
	sort.Strings(d.AutomataRemoved)
	return d
}

// patternShape normalizes a GROK text for comparison: generated field
// names are stripped (relearning renumbers PxFy identifiers), leaving the
// structural shape "%{DATETIME} %{IP} login".
func patternShape(text string) string {
	p, err := grok.ParsePattern(1, text)
	if err != nil {
		return text
	}
	for i := range p.Tokens {
		if p.Tokens[i].IsField {
			p.Tokens[i].Name = ""
		}
	}
	return p.String()
}
