package modelmgr

import (
	"strings"
	"testing"

	"loglens/internal/clock"
	"loglens/internal/obs"
	"loglens/internal/store"
)

// TestStorageErrorsRecorded: model-storage failures are captured in the
// flight recorder at the source.
func TestStorageErrorsRecorded(t *testing.T) {
	mgr := NewManager(store.New(), NewBuilder(BuilderConfig{}))
	f := obs.NewFlightRecorder(clock.NewFake(), 8)
	mgr.SetRecorder(f)

	if _, err := mgr.Load("ghost"); err == nil {
		t.Fatal("loading a missing model must fail")
	}
	evs := f.Events(obs.EventQuery{Type: obs.EventStorageError})
	if len(evs) != 1 || evs[0].Source != "ghost" ||
		!strings.Contains(evs[0].Detail, "not found") {
		t.Fatalf("storage-error events = %+v", evs)
	}

	// A corrupt stored document fails decode and records again.
	mgr.store.Index(ModelsIndex).Put("bad", store.Document{"id": "bad", "body": "{not json"})
	if _, err := mgr.Load("bad"); err == nil {
		t.Fatal("loading a corrupt model must fail")
	}
	if got := len(f.Events(obs.EventQuery{Type: obs.EventStorageError})); got != 2 {
		t.Fatalf("storage-error events = %d, want 2", got)
	}
}
