// Package modelmgr implements the model lifecycle components of §II: the
// model builder (unsupervised training of the log-pattern and automata
// models), the model manager (persistence in the model storage, periodic
// relearning, expert edits), and the model controller (add/update/delete
// instructions delivered to running detectors without service disruption).
package modelmgr

import (
	"encoding/json"
	"fmt"
	"time"

	"loglens/internal/automata"
	"loglens/internal/clock"
	"loglens/internal/grok"
	"loglens/internal/idfield"
	"loglens/internal/logmine"
	"loglens/internal/logtypes"
	"loglens/internal/parser"
	"loglens/internal/preprocess"
	"loglens/internal/seqdetect"
	"loglens/internal/volume"
)

// Model is a complete LogLens model: the GROK pattern set driving the
// stateless parser plus the automata model driving the stateful detector.
type Model struct {
	// ID names the model in the model storage.
	ID string
	// CreatedAt is the build time.
	CreatedAt time.Time
	// Patterns is the log-pattern model.
	Patterns *grok.Set
	// Sequence is the log-sequence model.
	Sequence *automata.Model
	// Volume is the optional per-pattern rate profile for the
	// log-volume analytics application (nil when not learned).
	Volume *volume.Profile
}

// Clone deep-copies the model so user edits never disturb running
// detectors.
func (m *Model) Clone() *Model {
	c := &Model{
		ID:        m.ID,
		CreatedAt: m.CreatedAt,
		Patterns:  m.Patterns.Clone(),
		Sequence:  m.Sequence.Clone(),
	}
	if m.Volume != nil {
		v := &volume.Profile{Window: m.Volume.Window, Stats: make(map[int]volume.PatternStats, len(m.Volume.Stats))}
		for k, s := range m.Volume.Stats {
			v.Stats[k] = s
		}
		c.Volume = v
	}
	return c
}

type modelJSON struct {
	ID        string          `json:"id"`
	CreatedAt time.Time       `json:"createdAt"`
	Patterns  *grok.Set       `json:"patterns"`
	Sequence  *automata.Model `json:"sequence"`
	Volume    *volume.Profile `json:"volume,omitempty"`
}

// MarshalJSON serializes the model for the model storage, with patterns in
// their human-editable GROK text form.
func (m *Model) MarshalJSON() ([]byte, error) {
	return json.Marshal(modelJSON{ID: m.ID, CreatedAt: m.CreatedAt, Patterns: m.Patterns, Sequence: m.Sequence, Volume: m.Volume})
}

// UnmarshalJSON restores a stored (possibly expert-edited) model.
func (m *Model) UnmarshalJSON(data []byte) error {
	var mj modelJSON
	if err := json.Unmarshal(data, &mj); err != nil {
		return fmt.Errorf("modelmgr: unmarshal model: %w", err)
	}
	if mj.Patterns == nil {
		mj.Patterns = grok.NewSet()
	}
	if mj.Sequence == nil {
		mj.Sequence = &automata.Model{IDFields: map[int]string{}}
	}
	m.ID, m.CreatedAt, m.Patterns, m.Sequence, m.Volume = mj.ID, mj.CreatedAt, mj.Patterns, mj.Sequence, mj.Volume
	return nil
}

// BuildReport summarizes one training run.
type BuildReport struct {
	// TrainingLogs is the corpus size.
	TrainingLogs int
	// Patterns is the number of discovered GROK patterns.
	Patterns int
	// Automata is the number of learned automata.
	Automata int
	// CoveredPatterns is how many patterns have a discovered ID field.
	CoveredPatterns int
	// UnparsedTraining counts training logs the discovered patterns
	// failed to re-parse (should be zero; nonzero indicates clustering
	// drift).
	UnparsedTraining int
	// Elapsed is the wall-clock build time.
	Elapsed time.Duration
}

// BuilderConfig tunes the model builder.
type BuilderConfig struct {
	// Logmine tunes pattern-discovery clustering.
	Logmine logmine.Config
	// IDField tunes event-ID discovery.
	IDField idfield.Config
	// Preprocessor supplies tokenization and timestamp identification
	// (nil = defaults).
	Preprocessor *preprocess.Preprocessor
	// SkipSequence disables automata learning (pattern-only models for
	// purely stateless deployments).
	SkipSequence bool
	// VolumeWindow, when positive, also learns the per-pattern
	// rate profile for the volume analytics application.
	VolumeWindow time.Duration
	// Clock stamps CreatedAt and measures build time (default the wall
	// clock); injected by deterministic tests.
	Clock clock.Clock
}

// Builder builds models from training logs ("assuming that they represent
// normal behavior", §II).
type Builder struct {
	cfg BuilderConfig
}

// NewBuilder constructs a Builder.
func NewBuilder(cfg BuilderConfig) *Builder {
	if cfg.Preprocessor == nil {
		cfg.Preprocessor = preprocess.New(nil, nil)
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.New()
	}
	return &Builder{cfg: cfg}
}

// Build runs the full unsupervised pipeline on a training corpus:
// pattern discovery by clustering (§III-A), then parsing the corpus with
// the discovered patterns, event-ID discovery (§IV-A1), and automata
// learning (§IV-A2).
func (b *Builder) Build(id string, logs []logtypes.Log) (*Model, *BuildReport, error) {
	if len(logs) == 0 {
		return nil, nil, fmt.Errorf("modelmgr: build %q: empty training corpus", id)
	}
	start := b.cfg.Clock.Now()

	// Phase 1: discover patterns.
	pp := b.cfg.Preprocessor.Clone()
	clusterer := logmine.New(b.cfg.Logmine)
	for _, l := range logs {
		r := pp.Process(l.Raw)
		clusterer.Add(r.Tokens, r.Types)
	}
	set := clusterer.Patterns()

	report := &BuildReport{
		TrainingLogs: len(logs),
		Patterns:     set.Len(),
	}

	model := &Model{
		ID:        id,
		CreatedAt: b.cfg.Clock.Now(),
		Patterns:  set,
		Sequence:  &automata.Model{IDFields: map[int]string{}},
	}

	// Phase 2: parse the corpus with the discovered patterns and learn
	// the sequence model.
	p := parser.New(set, b.cfg.Preprocessor.Clone())
	parsed := make([]*logtypes.ParsedLog, 0, len(logs))
	for _, l := range logs {
		pl, err := p.Parse(l)
		if err != nil {
			report.UnparsedTraining++
			continue
		}
		parsed = append(parsed, pl)
	}

	if !b.cfg.SkipSequence {
		disc := idfield.Discover(parsed, b.cfg.IDField)
		model.Sequence = automata.Learn(parsed, disc)
		report.Automata = len(model.Sequence.Automata)
		report.CoveredPatterns = len(model.Sequence.IDFields)
	}
	if b.cfg.VolumeWindow > 0 {
		model.Volume = volume.Learn(parsed, b.cfg.VolumeWindow)
	}
	report.Elapsed = b.cfg.Clock.Since(start)
	return model, report, nil
}

// NewParser builds a stateless parser over the model's patterns.
func (m *Model) NewParser(pp *preprocess.Preprocessor) *parser.Parser {
	return parser.New(m.Patterns, pp)
}

// NewDetector builds a stateful detector over the model's sequence model.
func (m *Model) NewDetector(cfg seqdetect.Config) *seqdetect.Detector {
	return seqdetect.New(m.Sequence, cfg)
}
