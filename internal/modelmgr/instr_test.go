package modelmgr

import (
	"testing"
	"time"

	"loglens/internal/bus"
	"loglens/internal/clock"
	"loglens/internal/metrics"
	"loglens/internal/store"
)

// TestManagerInstrument: rebuild/save/load activity is mirrored into the
// registry, with the rebuild duration measured on the injected clock.
func TestManagerInstrument(t *testing.T) {
	reg := metrics.NewRegistry()
	st := store.New()
	mgr := NewManager(st, NewBuilder(BuilderConfig{}))
	mgr.SetClock(clock.NewFakeAt(base))
	mgr.Instrument(reg)

	ix := st.Index(LogsIndexFor("tasks"))
	for _, l := range corpus(60) {
		ix.PutAuto(store.Document{"raw": l.Raw, "seq": l.Seq, "arrival": l.Arrival, "source": l.Source})
	}
	if _, _, err := mgr.Rebuild("r1", "tasks", base.Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Load("r1"); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counter("modelmgr_rebuilds_total"); got != 1 {
		t.Errorf("rebuilds = %d, want 1", got)
	}
	if got := snap.Counter("modelmgr_saves_total"); got != 1 { // Rebuild saves
		t.Errorf("saves = %d, want 1", got)
	}
	if got := snap.Counter("modelmgr_loads_total"); got != 1 {
		t.Errorf("loads = %d, want 1", got)
	}
	h, ok := snap.Histogram("modelmgr_rebuild_seconds")
	if !ok || h.Count != 1 {
		t.Errorf("rebuild_seconds = %+v, ok=%v, want one observation", h, ok)
	}
}

// TestControllerAnnounceMetrics: announced instructions are counted per
// op; rejected (invalid-op) announcements are not.
func TestControllerAnnounceMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	c, err := NewController(bus.New())
	if err != nil {
		t.Fatal(err)
	}
	c.SetMetrics(reg)

	if err := c.Announce(Instruction{Op: OpAdd, ModelID: "m1"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Announce(Instruction{Op: OpUpdate, ModelID: "m1"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Announce(Instruction{Op: "bogus", ModelID: "m1"}); err == nil {
		t.Fatal("invalid op must fail")
	}

	snap := reg.Snapshot()
	if got := snap.Counter("modelmgr_announced_total", "op", "add"); got != 1 {
		t.Errorf("announced{add} = %d, want 1", got)
	}
	if got := snap.Counter("modelmgr_announced_total", "op", "update"); got != 1 {
		t.Errorf("announced{update} = %d, want 1", got)
	}
	if got := snap.CounterSum("modelmgr_announced_total"); got != 2 {
		t.Errorf("announced sum = %d, want 2", got)
	}
}
