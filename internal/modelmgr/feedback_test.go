package modelmgr

import (
	"testing"

	"loglens/internal/logmine"
	"loglens/internal/logtypes"
)

func TestAcceptNormal(t *testing.T) {
	b := NewBuilder(BuilderConfig{})
	m, _, err := b.Build("m", corpus(100))
	if err != nil {
		t.Fatal(err)
	}
	before := m.Patterns.Len()

	// The operator accepts a batch of flagged-but-benign logs from a
	// new subsystem.
	accepted := []string{
		"gc pause took 12 ms heap 512 mb",
		"gc pause took 9 ms heap 498 mb",
		"gc pause took 30 ms heap 730 mb",
	}
	added, err := m.AcceptNormal(accepted, nil, logmine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 {
		t.Fatalf("added = %d, want 1 new pattern", added)
	}
	if m.Patterns.Len() != before+1 {
		t.Fatalf("patterns = %d", m.Patterns.Len())
	}
	// The accepted shape now parses.
	p := m.NewParser(nil)
	if _, err := p.Parse(logtypes.Log{Raw: "gc pause took 7 ms heap 600 mb"}); err != nil {
		t.Errorf("accepted shape still unparsed: %v", err)
	}
	// Old traffic still parses.
	if _, err := p.Parse(corpus(1)[0]); err != nil {
		t.Errorf("existing pattern broken: %v", err)
	}
}

func TestAcceptNormalSkipsKnownShapes(t *testing.T) {
	b := NewBuilder(BuilderConfig{})
	m, _, err := b.Build("m", corpus(100))
	if err != nil {
		t.Fatal(err)
	}
	// Lines that already parse add nothing.
	added, err := m.AcceptNormal([]string{corpus(1)[0].Raw, corpus(1)[1].Raw}, nil, logmine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 {
		t.Fatalf("added = %d, want 0 for already-parsed lines", added)
	}
	if _, err := m.AcceptNormal(nil, nil, logmine.Config{}); err != nil {
		t.Errorf("empty accept: %v", err)
	}
}

func TestDiffModels(t *testing.T) {
	b := NewBuilder(BuilderConfig{})
	m1, _, err := b.Build("v1", corpus(100))
	if err != nil {
		t.Fatal(err)
	}

	// Identical rebuild (different IDs/field numbering) diffs empty.
	m2, _, err := b.Build("v2", corpus(80))
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffModels(m1, m2); !d.Empty() {
		t.Fatalf("equivalent models diff: %s", d)
	}

	// Add a pattern and delete an automaton.
	m3 := m2.Clone()
	if _, err := m3.AcceptNormal([]string{"brand new shape 42"}, nil, logmine.Config{}); err != nil {
		t.Fatal(err)
	}
	m3.Sequence.Delete(m3.Sequence.Automata[0].ID)
	d := DiffModels(m1, m3)
	if len(d.PatternsAdded) != 1 {
		t.Errorf("patterns added = %v", d.PatternsAdded)
	}
	if len(d.AutomataRemoved) != 1 {
		t.Errorf("automata removed = %v", d.AutomataRemoved)
	}
	if d.Empty() || d.String() == "" {
		t.Error("diff must render")
	}
}
