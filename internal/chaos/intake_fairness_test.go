package chaos

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"loglens/internal/clock"
	"loglens/internal/intake"
	"loglens/internal/testutil"
)

// Fairness scenario: one abusive tenant floods the TCP front door at 50x
// its rate limit while compliant tenants send exactly their allowance.
// Multi-tenant admission must keep the compliant tenants' accepted
// throughput within 10% of what they get with the front door to
// themselves, and cap the abuser at its limit — the abuser's pressure
// lands on its own socket (backpressure), never on the shared queue.

const (
	fairRate    = 20 // lines/s/tenant, also the burst
	fairSeconds = 5  // simulated seconds of load
)

// tenantPublished reads one tenant's published count from the stats
// snapshot.
func tenantPublished(svc *intake.Service, tenant string) uint64 {
	for _, ts := range svc.Stats().Tenants {
		if ts.Tenant == tenant {
			return ts.Published
		}
	}
	return 0
}

// runFairnessLoad drives fairSeconds of compliant load from two tenants
// — optionally with the abuser flooding alongside — on a fake clock, and
// returns each compliant tenant's published count plus the abuser's.
func runFairnessLoad(t *testing.T, withAbuser bool) (map[string]uint64, uint64) {
	t.Helper()
	fc := clock.NewFake()
	svc := intake.New(intake.Config{
		SyslogTCP:   "127.0.0.1:0",
		TenantRate:  fairRate,
		TenantBurst: fairRate,
		Clock:       fc,
	}, func(string, uint64, []byte, time.Time) {})
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	tenants := []string{"good1", "good2"}
	conns := make(map[string]net.Conn, len(tenants))
	for _, tn := range tenants {
		c, err := net.Dial("tcp", svc.TCPAddr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		conns[tn] = c
	}

	var wg sync.WaitGroup
	if withAbuser {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := net.Dial("tcp", svc.TCPAddr())
			if err != nil {
				return
			}
			defer c.Close()
			// 50x the whole window's allowance, offered as fast as the
			// socket takes it. The admission layer rate-waits before
			// enqueueing, so this blocks in the kernel send buffer —
			// write errors after the service aborts are the expected
			// ending.
			var b bytes.Buffer
			for i := 0; i < 50*fairRate*fairSeconds; i++ {
				fmt.Fprintf(&b, "<13>Feb  5 17:32:18 abuser app: flood %d\n", i)
			}
			c.Write(b.Bytes())
		}()
	}

	for sec := 1; sec <= fairSeconds; sec++ {
		for _, tn := range tenants {
			var b bytes.Buffer
			for i := 0; i < fairRate; i++ {
				fmt.Fprintf(&b, "<13>Feb  5 17:32:18 %s app: line %d-%d\n", tn, sec, i)
			}
			if _, err := conns[tn].Write(b.Bytes()); err != nil {
				t.Fatal(err)
			}
		}
		want := uint64(fairRate * sec)
		for _, tn := range tenants {
			tn := tn
			testutil.WaitUntil(t, 10*time.Second, func() bool {
				return tenantPublished(svc, tn) >= want
			}, fmt.Sprintf("tenant %s second-%d batch not published", tn, sec))
		}
		if sec < fairSeconds {
			fc.Advance(time.Second)
		}
	}

	out := make(map[string]uint64, len(tenants))
	for _, tn := range tenants {
		out[tn] = tenantPublished(svc, tn)
	}
	abuser := tenantPublished(svc, "abuser")
	// Abort the front door so the abuser's parked admissions shed and its
	// writer goroutine unblocks.
	svc.Close()
	wg.Wait()
	return out, abuser
}

func TestIntakeTenantFairness(t *testing.T) {
	solo, _ := runFairnessLoad(t, false)
	contended, abuser := runFairnessLoad(t, true)

	for tn, got := range contended {
		base := solo[tn]
		if base == 0 {
			t.Fatalf("solo baseline for %s is zero", tn)
		}
		// Within 10% of the solo baseline: got >= 0.9 * base.
		if got*10 < base*9 {
			t.Errorf("tenant %s published %d under contention, solo baseline %d: degraded more than 10%%",
				tn, got, base)
		}
	}
	// The abuser offered 50x its allowance; the bucket caps what can have
	// been admitted at burst + rate per elapsed simulated second.
	if limit := uint64(fairRate * (fairSeconds + 1)); abuser > limit {
		t.Errorf("abuser published %d, want <= %d: rate limit did not hold under flood", abuser, limit)
	}
}
