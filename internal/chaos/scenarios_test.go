package chaos

// Scenario suite: the paper's §V guarantees exercised under injected
// faults, on a fake clock, in milliseconds of wall time. Every scenario
// is seed-reproducible: the fault schedule is a pure function of the
// Config seed and the (fixed) call sequence.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"loglens/internal/anomaly"
	"loglens/internal/automata"
	"loglens/internal/bus"
	"loglens/internal/clock"
	"loglens/internal/heartbeat"
	"loglens/internal/idfield"
	"loglens/internal/logtypes"
	"loglens/internal/seqdetect"
	"loglens/internal/stream"
)

var (
	wall0 = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	log0  = time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)
)

// trace builds one event's parsed-log sequence, one log per second
// starting at log0+offset (mirrors the seqdetect test corpus).
func trace(eventID string, offset int, patterns ...int) []*logtypes.ParsedLog {
	out := make([]*logtypes.ParsedLog, len(patterns))
	for i, pid := range patterns {
		out[i] = &logtypes.ParsedLog{
			Log:          logtypes.Log{Source: "s", Seq: uint64(offset*100 + i), Raw: "raw"},
			PatternID:    pid,
			Fields:       []logtypes.Field{{Name: "id", Value: eventID}},
			Timestamp:    log0.Add(time.Duration(offset+i) * time.Second),
			HasTimestamp: true,
		}
	}
	return out
}

func disc(patterns ...int) idfield.Discovery {
	d := idfield.Discovery{FieldOf: map[int]string{}}
	for _, p := range patterns {
		d.FieldOf[p] = "id"
	}
	return d
}

// learnedModel trains the 1->2->3 automaton with max duration 4s, so the
// detector's expiry window is ExpiryFactor(2.0) x 4s = 8s of log time.
func learnedModel() *automata.Model {
	var logs []*logtypes.ParsedLog
	logs = append(logs, trace("t1", 0, 1, 2, 3)...)
	logs = append(logs, trace("t2", 10, 1, 2, 2, 3)...)
	logs = append(logs, trace("t3", 20, 1, 2, 2, 3)...)
	logs = append(logs, trace("t4", 30, 1, 2, 2, 2, 3)...)
	return automata.Learn(logs, disc(1, 2, 3))
}

// Scenario: heartbeat expiry fires within one logical interval. A source
// emits an event begin and goes silent; the external heartbeat controller
// (fake wall clock, 1s interval) synthesizes log time at the observed
// rate; the detector must report the stuck event on exactly the first
// heartbeat whose synthesized log time crosses the 8s expiry window — the
// 9th tick, not earlier, not later.
func TestScenarioHeartbeatExpiryWithinOneInterval(t *testing.T) {
	clk := clock.NewFakeAt(wall0)
	ctrl := heartbeat.New(heartbeat.Config{Interval: time.Second})
	ctrl.SetClock(clk)
	det := seqdetect.New(learnedModel(), seqdetect.Config{})

	// The event begins (pattern 1 only — its end never arrives) and the
	// controller observes the source's embedded log time at wall0.
	begin := trace("e1", 0, 1)
	for _, l := range begin {
		if recs := det.Process(l); len(recs) != 0 {
			t.Fatalf("begin log flagged immediately: %+v", recs)
		}
		ctrl.Observe(l.Source, l.Timestamp)
	}
	if det.OpenStates() == 0 {
		t.Fatal("no open state after event begin")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	emitted := make(chan heartbeat.Heartbeat, 16)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctrl.Run(ctx, func(hb heartbeat.Heartbeat) { emitted <- hb })
	}()
	clk.BlockUntil(1) // Run's ticker is registered

	// With a single observation the controller assumes log time tracks
	// wall time, so tick k synthesizes log0 + k seconds. The expiry
	// window closes strictly after 8s: tick 9 is the first heartbeat
	// past it.
	for tick := 1; tick <= 9; tick++ {
		clk.Advance(time.Second)
		var hb heartbeat.Heartbeat
		select {
		case hb = <-emitted:
		case <-time.After(5 * time.Second):
			t.Fatalf("tick %d: no heartbeat emitted", tick)
		}
		wantLog := log0.Add(time.Duration(tick) * time.Second)
		if !hb.Time.Equal(wantLog) {
			t.Fatalf("tick %d synthesized log time %v, want %v", tick, hb.Time, wantLog)
		}
		recs := det.HeartbeatFor(hb.Source, hb.Time)
		if tick < 9 && len(recs) != 0 {
			t.Fatalf("tick %d (within expiry window): anomalies %+v", tick, recs)
		}
		if tick == 9 {
			if len(recs) != 1 {
				t.Fatalf("tick 9 (first past expiry window): %d anomalies, want 1", len(recs))
			}
			if recs[0].Type != anomaly.MissingEnd || recs[0].EventID != "e1" {
				t.Fatalf("tick 9 anomaly = %+v, want MissingEnd for e1", recs[0])
			}
		}
	}
	if det.OpenStates() != 0 {
		t.Errorf("open states = %d after expiry", det.OpenStates())
	}
	cancel()
	wg.Wait()
}

// advanceBatches drives a fake-clock engine until cond holds, advancing
// one batch interval per step. The real-time deadline is a failsafe only.
func advanceBatches(t *testing.T, clk *clock.Fake, interval time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("engine did not reach expected state under fake clock")
		}
		clk.BlockUntil(1)
		clk.Advance(interval)
	}
}

// Scenario: rebroadcast never loses or double-applies a model, even with
// workers crashing mid-micro-batch. Model v1 serves the first wave of
// records, a rebroadcast installs v2 between micro-batches, and a seeded
// crash plan panics operators throughout. Invariants: the update is
// applied exactly once; every surviving record observes exactly the model
// version current for its wave (never a lost update, never a duplicate
// application bumping the version twice); per-partition observed versions
// never regress; partition state maps survive every crash.
func TestScenarioRebroadcastUnderWorkerCrashes(t *testing.T) {
	const interval = 10 * time.Millisecond
	clk := clock.NewFakeAt(wall0)
	cfg := Config{Seed: 11, Crash: 0.15}
	var stats Stats

	type obs struct {
		partition int
		version   int
	}
	var mu sync.Mutex
	var seen []obs

	proc := WrapOperator(cfg, &stats, func(ctx *stream.Context, rec stream.Record) []any {
		v, ok := ctx.Broadcast("model")
		if !ok {
			panic("model broadcast missing")
		}
		// Per-partition processed counter in the state map: crashes
		// must not reset it (the partition survives).
		n, _ := ctx.States().Get("processed")
		count, _ := n.(int)
		ctx.States().Put("processed", count+1)
		mu.Lock()
		seen = append(seen, obs{ctx.Partition(), v.(int)})
		mu.Unlock()
		return []any{v}
	})

	eng := stream.New(stream.Config{Partitions: 4, BatchInterval: interval, Clock: clk}, proc)
	eng.Broadcast("model", 1)
	var outputs []any
	eng.SetSink(func(o any) { outputs = append(outputs, o) })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); _ = eng.Run(ctx) }()

	const wave = 200
	for i := 0; i < wave; i++ {
		if err := eng.Send(stream.Record{Key: fmt.Sprintf("k%d", i), Value: i}); err != nil {
			t.Fatal(err)
		}
	}
	advanceBatches(t, clk, interval, func() bool { return eng.Metrics().Records >= wave })

	// Wave 1 fully processed under v1; install v2 with zero downtime.
	eng.Rebroadcast("model", 2)
	for i := wave; i < 2*wave; i++ {
		if err := eng.Send(stream.Record{Key: fmt.Sprintf("k%d", i), Value: i}); err != nil {
			t.Fatal(err)
		}
	}
	advanceBatches(t, clk, interval, func() bool { return eng.Metrics().Records >= 2*wave })
	eng.Close()
	<-done

	m := eng.Metrics()
	if m.UpdatesApplied != 1 {
		t.Errorf("UpdatesApplied = %d, want exactly 1 (no lost or double-applied model)", m.UpdatesApplied)
	}
	crashes := stats.Crashes
	if crashes == 0 {
		t.Fatal("crash plan injected nothing; widen probability")
	}
	if m.OperatorPanics != crashes {
		t.Errorf("OperatorPanics = %d, injected crashes = %d", m.OperatorPanics, crashes)
	}
	if uint64(len(outputs)) != 2*wave-crashes {
		t.Errorf("outputs = %d, want %d records minus %d crashes", len(outputs), 2*wave, crashes)
	}

	// Every observation carries a version that was genuinely installed,
	// and versions never regress within a partition.
	last := map[int]int{}
	for _, o := range seen {
		if o.version != 1 && o.version != 2 {
			t.Fatalf("observed model version %d was never installed", o.version)
		}
		if o.version < last[o.partition] {
			t.Fatalf("partition %d saw model version regress %d -> %d", o.partition, last[o.partition], o.version)
		}
		last[o.partition] = o.version
	}
	mu.Lock()
	v1 := 0
	for _, o := range seen {
		if o.version == 1 {
			v1++
		}
	}
	mu.Unlock()
	if v1 == 0 || v1 > wave {
		t.Errorf("%d observations under v1, want (0, %d]: wave 1 ran before the update, wave 2 after", v1, wave)
	}

	// State maps survived the crashes: per-partition counters sum to the
	// surviving record count.
	total := 0
	for p := 0; p < eng.Partitions(); p++ {
		sm, err := eng.StateMap(p)
		if err != nil {
			t.Fatal(err)
		}
		if n, ok := sm.Get("processed"); ok {
			total += n.(int)
		}
	}
	if uint64(total) != 2*wave-crashes {
		t.Errorf("state-map counters = %d, want %d (partition state lost in a crash)", total, 2*wave-crashes)
	}
}

// Scenario: consumer-group offsets never regress under full producer
// chaos. Drops, duplicates, delays, and reordering batter the publish
// path; a two-member consumer group drains the topic. Invariants: within
// the group every (partition, offset) is delivered exactly once; per
// member, offsets are strictly monotone per partition (Violations
// empty); the group drains exactly what the producer delivered.
func TestScenarioGroupOffsetsNeverRegressUnderProducerChaos(t *testing.T) {
	b := bus.New()
	if err := b.CreateTopic("logs", 3); err != nil {
		t.Fatal(err)
	}
	clk := clock.NewFakeAt(wall0)
	p := NewProducer(b, "logs", clk, Config{
		Seed: 77, Drop: 0.1, Duplicate: 0.15, Delay: 0.2,
		MaxDelay: 40 * time.Millisecond, ReorderWindow: 4,
	})
	const sent = 300
	for i := 0; i < sent; i++ {
		if err := p.Publish(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("m%d", i)), nil); err != nil {
			t.Fatal(err)
		}
		if i%20 == 19 {
			clk.Advance(15 * time.Millisecond)
			if err := p.Release(); err != nil {
				t.Fatal(err)
			}
		}
	}
	clk.Advance(time.Second)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	ps := p.Stats()
	if ps.Dropped == 0 || ps.Duplicated == 0 || ps.Delayed == 0 || ps.Windows == 0 {
		t.Fatalf("fault plan too quiet: %+v", ps)
	}
	if ps.Delivered != sent-ps.Dropped+ps.Duplicated {
		t.Fatalf("delivered %d, want sent(%d) - dropped(%d) + duplicated(%d)", ps.Delivered, sent, ps.Dropped, ps.Duplicated)
	}

	var members []*Consumer
	for i := 0; i < 2; i++ {
		c, err := b.NewConsumer("g", "logs")
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, NewConsumer(c, Config{Seed: 77}))
	}
	counts := map[partitionKey]map[int64]int{}
	var delivered uint64
	for idle := 0; idle < 3; {
		progressed := false
		for _, m := range members {
			for _, msg := range m.TryPoll(32) {
				k := partitionKey{msg.Topic, msg.Partition}
				if counts[k] == nil {
					counts[k] = map[int64]int{}
				}
				counts[k][msg.Offset]++
				delivered++
				progressed = true
			}
		}
		if progressed {
			idle = 0
		} else {
			idle++
		}
	}
	if delivered != ps.Delivered {
		t.Errorf("group drained %d messages, producer delivered %d", delivered, ps.Delivered)
	}
	for _, m := range members {
		if v := m.Violations(); len(v) != 0 {
			t.Errorf("offset regressions without a rewind: %v", v)
		}
	}
	// Exactly-once per offset across the group, offsets contiguous.
	for part, offs := range counts {
		end, err := b.EndOffset(part.topic, part.partition)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(offs)) != end {
			t.Errorf("%s/%d: %d distinct offsets delivered, end offset %d", part.topic, part.partition, len(offs), end)
		}
		for off, n := range offs {
			if n != 1 {
				t.Errorf("%s/%d offset %d delivered %d times within the group", part.topic, part.partition, off, n)
			}
		}
	}
}

// Scenario: consumer crash/restart redelivery is at-least-once and every
// regression is explained by an injected rewind. A single consumer with a
// seeded redelivery plan drains the topic; despite repeated rewinds the
// frontier reaches the end, no offset is skipped, and Violations stays
// empty (every regression sits above a recorded rewind floor).
func TestScenarioConsumerRedeliveryAtLeastOnce(t *testing.T) {
	b := bus.New()
	if err := b.CreateTopic("logs", 2); err != nil {
		t.Fatal(err)
	}
	const sent = 120
	for i := 0; i < sent; i++ {
		if _, _, err := b.Publish("logs", fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("m%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	c, err := b.NewConsumer("g", "logs")
	if err != nil {
		t.Fatal(err)
	}
	cc := NewConsumer(c, Config{Seed: 7, Redeliver: 0.3, RedeliverDepth: 3})
	counts := map[partitionKey]map[int64]int{}
	for iter, idle := 0, 0; idle < 3; iter++ {
		if iter > 10000 {
			t.Fatal("consumer did not drain; redelivery loop diverged")
		}
		msgs := cc.TryPoll(16)
		if len(msgs) == 0 {
			idle++
			continue
		}
		idle = 0
		for _, m := range msgs {
			k := partitionKey{m.Topic, m.Partition}
			if counts[k] == nil {
				counts[k] = map[int64]int{}
			}
			counts[k][m.Offset]++
		}
	}
	if cc.Stats().Redeliveries == 0 {
		t.Fatal("redelivery plan injected nothing; widen probability")
	}
	if v := cc.Violations(); len(v) != 0 {
		t.Errorf("unexplained offset regressions: %v", v)
	}
	if lag := c.Lag(); lag != 0 {
		t.Errorf("lag = %d after drain, want 0", lag)
	}
	covered := int64(0)
	for part, offs := range counts {
		end, err := b.EndOffset(part.topic, part.partition)
		if err != nil {
			t.Fatal(err)
		}
		for off := int64(0); off < end; off++ {
			if offs[off] < 1 {
				t.Errorf("%s/%d offset %d never delivered (at-least-once broken)", part.topic, part.partition, off)
			}
		}
		covered += end
	}
	if covered != sent {
		t.Errorf("coverage spans %d offsets, want %d", covered, sent)
	}
	// Same seed, same rewind schedule: reproducibility witness.
	if len(cc.Schedule()) != int(cc.Stats().Redeliveries) {
		t.Errorf("schedule records %d rewinds, stats say %d", len(cc.Schedule()), cc.Stats().Redeliveries)
	}
}

// Scenario: a fake-clock engine is fully quiescent until time moves.
// Records sent while time is frozen are never processed (only the batch
// timer closes a batch below MaxBatch); each Advance of one batch
// interval then drives the micro-batch cadence deterministically.
func TestScenarioFakeClockDrivesBatchCadence(t *testing.T) {
	const interval = 10 * time.Millisecond
	clk := clock.NewFakeAt(wall0)
	eng := stream.New(stream.Config{Partitions: 2, BatchInterval: interval, Clock: clk},
		func(ctx *stream.Context, rec stream.Record) []any { return []any{rec.Value} })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); _ = eng.Run(ctx) }()

	clk.BlockUntil(1) // the first batch timer is armed
	for i := 0; i < 3; i++ {
		if err := eng.Send(stream.Record{Key: fmt.Sprintf("k%d", i), Value: i}); err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.Metrics().Records; got != 0 {
		t.Fatalf("records processed with time frozen: %d", got)
	}
	advanceBatches(t, clk, interval, func() bool { return eng.Metrics().Records >= 3 })
	eng.Close()
	<-done
	if got := eng.Metrics().Records; got != 3 {
		t.Fatalf("records = %d, want 3", got)
	}
}
