package chaos

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"loglens/internal/clock"
	"loglens/internal/fsx"
	"loglens/internal/obs"
)

func TestFaultFSWriteError(t *testing.T) {
	dir := t.TempDir()
	rec := obs.NewFlightRecorder(clock.NewFake(), 16)
	ffs := NewFaultFS(fsx.OS{}, FSConfig{Seed: 7, WriteError: 1}, rec)
	err := ffs.WriteFile(filepath.Join(dir, "a"), []byte("data"), 0o644)
	if !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("err = %v, want ErrInjectedWrite", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "a")); !os.IsNotExist(err) {
		t.Fatal("destination exists after failed write")
	}
	if s := ffs.Stats(); s.WriteErrors != 1 || s.Writes != 1 {
		t.Fatalf("stats = %+v", s)
	}
	evs := rec.Events(obs.EventQuery{Type: obs.EventStorageError})
	if len(evs) != 1 {
		t.Fatalf("flight events = %d, want 1 storage-error", len(evs))
	}
}

func TestFaultFSShortWriteLeavesPrefix(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(fsx.OS{}, FSConfig{Seed: 7, ShortWrite: 1}, nil)
	data := []byte("0123456789abcdef")
	path := filepath.Join(dir, "torn")
	err := ffs.WriteFile(path, data, 0o644)
	if !errors.Is(err, ErrShortWrite) {
		t.Fatalf("err = %v, want ErrShortWrite", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatalf("short write left no file: %v", rerr)
	}
	if len(got) >= len(data) {
		t.Fatalf("short write persisted %d/%d bytes, want a strict prefix", len(got), len(data))
	}
	if string(got) != string(data[:len(got)]) {
		t.Fatalf("persisted bytes are not a prefix: %q", got)
	}
}

func TestFaultFSENOSPCBudget(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(fsx.OS{}, FSConfig{Seed: 1, ENOSPCAfter: 10}, nil)
	if err := ffs.WriteFile(filepath.Join(dir, "ok"), []byte("12345678"), 0o644); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := ffs.WriteFile(filepath.Join(dir, "full"), []byte("12345678"), 0o644)
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	if s := ffs.Stats(); s.NoSpace != 1 {
		t.Fatalf("stats = %+v", s)
	}
	ffs.Reset()
	if err := ffs.WriteFile(filepath.Join(dir, "again"), []byte("12345678"), 0o644); err != nil {
		t.Fatalf("after Reset: %v", err)
	}
}

func TestFaultFSDeterministicSchedule(t *testing.T) {
	run := func() []string {
		dir := t.TempDir()
		ffs := NewFaultFS(fsx.OS{}, FSConfig{Seed: 42, WriteError: 0.3, ShortWrite: 0.3}, nil)
		for i := 0; i < 40; i++ {
			ffs.WriteFile(filepath.Join(dir, "f"), []byte("payload-payload"), 0o644)
		}
		return ffs.Schedule()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no faults injected at p=0.3 over 40 writes")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("schedules differ:\n%v\n%v", a, b)
	}
}

func TestFaultFSAtomicWriteMasksTornWrite(t *testing.T) {
	// The contract the checkpoint manager relies on: a short write under
	// WriteFileAtomic tears only the temp file; the destination keeps its
	// previous contents.
	dir := t.TempDir()
	path := filepath.Join(dir, "checkpoint.json")
	if err := fsx.WriteFileAtomic(fsx.OS{}, path, []byte(`{"gen":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(fsx.OS{}, FSConfig{Seed: 3, ShortWrite: 1}, nil)
	if err := fsx.WriteFileAtomic(ffs, path, []byte(`{"gen":2}`), 0o644); err == nil {
		t.Fatal("want error from torn write")
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != `{"gen":1}` {
		t.Fatalf("destination = %q, %v; want previous generation intact", got, err)
	}
}

func TestFaultFSFailAtTargetsOneWrite(t *testing.T) {
	for _, kind := range []string{"", "error", "short", "enospc"} {
		kind := kind
		t.Run("kind="+kind, func(t *testing.T) {
			dir := t.TempDir()
			ffs := NewFaultFS(nil, FSConfig{Seed: 3, FailAt: 2, FailKind: kind}, nil)
			// Write 1 is clean, write 2 faults, write 3 is clean again:
			// FailAt is a single-shot fault, not a latch.
			if err := ffs.WriteFile(filepath.Join(dir, "w1"), []byte("one"), 0o644); err != nil {
				t.Fatalf("write 1: %v", err)
			}
			err := ffs.Append(filepath.Join(dir, "w2"), []byte("two-faulted"), 0o644)
			if err == nil {
				t.Fatal("FailAt=2 did not fault the second write")
			}
			switch kind {
			case "", "error":
				if !errors.Is(err, ErrInjectedWrite) {
					t.Fatalf("err = %v, want ErrInjectedWrite", err)
				}
			case "short":
				if !errors.Is(err, ErrShortWrite) {
					t.Fatalf("err = %v, want ErrShortWrite", err)
				}
				// The torn tail must be a strict prefix on disk.
				got, rerr := os.ReadFile(filepath.Join(dir, "w2"))
				if rerr != nil && !os.IsNotExist(rerr) {
					t.Fatal(rerr)
				}
				if len(got) >= len("two-faulted") {
					t.Fatalf("short append persisted %d bytes of %d", len(got), len("two-faulted"))
				}
			case "enospc":
				if !errors.Is(err, ErrNoSpace) {
					t.Fatalf("err = %v, want ErrNoSpace", err)
				}
			}
			if err := ffs.WriteFile(filepath.Join(dir, "w3"), []byte("three"), 0o644); err != nil {
				t.Fatalf("write 3 after the FailAt fault: %v", err)
			}
			if s := ffs.Stats(); s.Writes != 3 {
				t.Fatalf("stats = %+v, want 3 writes", s)
			}
		})
	}
}

func TestFaultFSAppendPassesThroughClean(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(fsx.OS{}, FSConfig{}, nil)
	path := filepath.Join(dir, "wal.log")
	if err := ffs.Append(path, []byte("aa"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ffs.Append(path, []byte("bb"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ffs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "aabb" {
		t.Fatalf("Append through FaultFS produced %q", got)
	}
	if s := ffs.Stats(); s.Writes != 2 || s.Bytes != 4 {
		t.Fatalf("stats = %+v, want 2 writes / 4 bytes", s)
	}
}

func TestFaultFSReadSidePassthrough(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, FSConfig{}, nil)
	sub := filepath.Join(dir, "sub")
	if err := ffs.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := ffs.WriteFile(filepath.Join(sub, "f"), []byte("0123"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := ffs.Open(filepath.Join(sub, "f"))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := f.ReadAt(buf, 1); err != nil || string(buf) != "12" {
		t.Fatalf("ReadAt = %q, %v", buf, err)
	}
	f.Close()
	if err := ffs.Rename(filepath.Join(sub, "f"), filepath.Join(sub, "g")); err != nil {
		t.Fatal(err)
	}
	ents, err := ffs.ReadDir(sub)
	if err != nil || len(ents) != 1 || ents[0].Name() != "g" {
		t.Fatalf("ReadDir after rename = %v, %v", ents, err)
	}
	if err := ffs.RemoveAll(sub); err != nil {
		t.Fatal(err)
	}
	if _, err := ffs.ReadDir(sub); err == nil {
		t.Fatal("ReadDir succeeded on a removed directory")
	}
}
