package chaos

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"loglens/internal/clock"
	"loglens/internal/fsx"
	"loglens/internal/obs"
)

func TestFaultFSWriteError(t *testing.T) {
	dir := t.TempDir()
	rec := obs.NewFlightRecorder(clock.NewFake(), 16)
	ffs := NewFaultFS(fsx.OS{}, FSConfig{Seed: 7, WriteError: 1}, rec)
	err := ffs.WriteFile(filepath.Join(dir, "a"), []byte("data"), 0o644)
	if !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("err = %v, want ErrInjectedWrite", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "a")); !os.IsNotExist(err) {
		t.Fatal("destination exists after failed write")
	}
	if s := ffs.Stats(); s.WriteErrors != 1 || s.Writes != 1 {
		t.Fatalf("stats = %+v", s)
	}
	evs := rec.Events(obs.EventQuery{Type: obs.EventStorageError})
	if len(evs) != 1 {
		t.Fatalf("flight events = %d, want 1 storage-error", len(evs))
	}
}

func TestFaultFSShortWriteLeavesPrefix(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(fsx.OS{}, FSConfig{Seed: 7, ShortWrite: 1}, nil)
	data := []byte("0123456789abcdef")
	path := filepath.Join(dir, "torn")
	err := ffs.WriteFile(path, data, 0o644)
	if !errors.Is(err, ErrShortWrite) {
		t.Fatalf("err = %v, want ErrShortWrite", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatalf("short write left no file: %v", rerr)
	}
	if len(got) >= len(data) {
		t.Fatalf("short write persisted %d/%d bytes, want a strict prefix", len(got), len(data))
	}
	if string(got) != string(data[:len(got)]) {
		t.Fatalf("persisted bytes are not a prefix: %q", got)
	}
}

func TestFaultFSENOSPCBudget(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(fsx.OS{}, FSConfig{Seed: 1, ENOSPCAfter: 10}, nil)
	if err := ffs.WriteFile(filepath.Join(dir, "ok"), []byte("12345678"), 0o644); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := ffs.WriteFile(filepath.Join(dir, "full"), []byte("12345678"), 0o644)
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	if s := ffs.Stats(); s.NoSpace != 1 {
		t.Fatalf("stats = %+v", s)
	}
	ffs.Reset()
	if err := ffs.WriteFile(filepath.Join(dir, "again"), []byte("12345678"), 0o644); err != nil {
		t.Fatalf("after Reset: %v", err)
	}
}

func TestFaultFSDeterministicSchedule(t *testing.T) {
	run := func() []string {
		dir := t.TempDir()
		ffs := NewFaultFS(fsx.OS{}, FSConfig{Seed: 42, WriteError: 0.3, ShortWrite: 0.3}, nil)
		for i := 0; i < 40; i++ {
			ffs.WriteFile(filepath.Join(dir, "f"), []byte("payload-payload"), 0o644)
		}
		return ffs.Schedule()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no faults injected at p=0.3 over 40 writes")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("schedules differ:\n%v\n%v", a, b)
	}
}

func TestFaultFSAtomicWriteMasksTornWrite(t *testing.T) {
	// The contract the checkpoint manager relies on: a short write under
	// WriteFileAtomic tears only the temp file; the destination keeps its
	// previous contents.
	dir := t.TempDir()
	path := filepath.Join(dir, "checkpoint.json")
	if err := fsx.WriteFileAtomic(fsx.OS{}, path, []byte(`{"gen":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(fsx.OS{}, FSConfig{Seed: 3, ShortWrite: 1}, nil)
	if err := fsx.WriteFileAtomic(ffs, path, []byte(`{"gen":2}`), 0o644); err == nil {
		t.Fatal("want error from torn write")
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != `{"gen":1}` {
		t.Fatalf("destination = %q, %v; want previous generation intact", got, err)
	}
}
