package chaos

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"loglens/internal/bus"
	"loglens/internal/clock"
	"loglens/internal/stream"
)

// drain reads every currently available message from a consumer, grouped
// by partition in delivery order.
func drain(c *bus.Consumer) map[int][]string {
	out := make(map[int][]string)
	for {
		msgs := c.TryPoll(64)
		if len(msgs) == 0 {
			return out
		}
		for _, m := range msgs {
			out[m.Partition] = append(out[m.Partition], string(m.Value))
		}
	}
}

func newTopic(t *testing.T, partitions int) *bus.Bus {
	t.Helper()
	b := bus.New()
	if err := b.CreateTopic("logs", partitions); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	b := newTopic(t, 2)
	p := NewProducer(b, "logs", clock.NewFake(), Config{Seed: 1})
	for i := 0; i < 50; i++ {
		if err := p.Publish(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("m%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	s := p.Stats()
	if s.Published != 50 || s.Delivered != 50 || s.Dropped+s.Duplicated+s.Delayed+s.Windows != 0 {
		t.Fatalf("stats = %+v, want 50 published, 50 delivered, no faults", s)
	}
	if sched := p.Schedule(); len(sched) != 0 {
		t.Fatalf("schedule = %v, want empty", sched)
	}
}

func TestDropAndDuplicateCertain(t *testing.T) {
	b := newTopic(t, 1)
	p := NewProducer(b, "logs", clock.NewFake(), Config{Seed: 1, Drop: 1})
	for i := 0; i < 10; i++ {
		_ = p.Publish("k", []byte("m"), nil)
	}
	if s := p.Stats(); s.Dropped != 10 || s.Delivered != 0 {
		t.Fatalf("drop=1 stats = %+v", s)
	}

	p2 := NewProducer(b, "logs", clock.NewFake(), Config{Seed: 1, Duplicate: 1})
	for i := 0; i < 10; i++ {
		_ = p2.Publish("k", []byte("m"), nil)
	}
	if s := p2.Stats(); s.Duplicated != 10 || s.Delivered != 20 {
		t.Fatalf("duplicate=1 stats = %+v", s)
	}
}

func TestDelayHeldUntilClockAdvances(t *testing.T) {
	b := newTopic(t, 1)
	clk := clock.NewFake()
	p := NewProducer(b, "logs", clk, Config{Seed: 3, Delay: 1, MaxDelay: 50 * time.Millisecond})
	for i := 0; i < 5; i++ {
		_ = p.Publish("k", []byte(fmt.Sprintf("m%d", i)), nil)
	}
	if s := p.Stats(); s.Delayed != 5 || s.Delivered != 0 {
		t.Fatalf("before advance: stats = %+v, want all held", s)
	}
	clk.Advance(50 * time.Millisecond)
	if err := p.Release(); err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.Delivered != 5 {
		t.Fatalf("after advance: stats = %+v, want 5 delivered", s)
	}
	c, err := b.NewConsumer("g", "logs")
	if err != nil {
		t.Fatal(err)
	}
	got := drain(c)[0]
	// Released in due-time order (ties by input sequence) — a
	// deterministic permutation of the inputs.
	if len(got) != 5 {
		t.Fatalf("delivered %v, want 5 messages", got)
	}
}

func TestReorderWindowPermutesDeterministically(t *testing.T) {
	cfg := Config{Seed: 9, ReorderWindow: 4}
	var orders [2][]string
	for run := 0; run < 2; run++ {
		b := newTopic(t, 1)
		p := NewProducer(b, "logs", clock.NewFake(), cfg)
		for i := 0; i < 10; i++ {
			_ = p.Publish("k", []byte(fmt.Sprintf("m%d", i)), nil)
		}
		if err := p.Flush(); err != nil { // release the partial last window
			t.Fatal(err)
		}
		c, err := b.NewConsumer("g", "logs")
		if err != nil {
			t.Fatal(err)
		}
		orders[run] = drain(c)[0]
		if len(orders[run]) != 10 {
			t.Fatalf("run %d delivered %d messages, want 10", run, len(orders[run]))
		}
	}
	if !reflect.DeepEqual(orders[0], orders[1]) {
		t.Fatalf("same seed, different delivery orders:\n%v\n%v", orders[0], orders[1])
	}
	if reflect.DeepEqual(orders[0], []string{"m0", "m1", "m2", "m3", "m4", "m5", "m6", "m7", "m8", "m9"}) {
		t.Fatalf("reorder window left input order intact: %v", orders[0])
	}
}

func TestScheduleReproducible(t *testing.T) {
	cfg := Config{Seed: 42, Drop: 0.1, Duplicate: 0.1, Delay: 0.2, MaxDelay: 40 * time.Millisecond, ReorderWindow: 3}
	var scheds [2][]string
	var delivered [2]map[int][]string
	for run := 0; run < 2; run++ {
		b := newTopic(t, 3)
		clk := clock.NewFake()
		p := NewProducer(b, "logs", clk, cfg)
		for i := 0; i < 100; i++ {
			_ = p.Publish(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("m%d", i)), nil)
			if i%10 == 9 {
				clk.Advance(10 * time.Millisecond)
				_ = p.Release()
			}
		}
		clk.Advance(time.Second)
		_ = p.Release()
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}
		scheds[run] = p.Schedule()
		c, err := b.NewConsumer("g", "logs")
		if err != nil {
			t.Fatal(err)
		}
		delivered[run] = drain(c)
	}
	if len(scheds[0]) == 0 {
		t.Fatal("fault plan injected nothing; widen probabilities")
	}
	if !reflect.DeepEqual(scheds[0], scheds[1]) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", scheds[0], scheds[1])
	}
	if !reflect.DeepEqual(delivered[0], delivered[1]) {
		t.Fatalf("same seed, different per-partition deliveries:\n%v\n%v", delivered[0], delivered[1])
	}
}

func TestDifferentSeedsDifferentSchedules(t *testing.T) {
	var scheds [2][]string
	for run, seed := range []int64{1, 2} {
		b := newTopic(t, 1)
		p := NewProducer(b, "logs", clock.NewFake(), Config{Seed: seed, Drop: 0.3})
		for i := 0; i < 50; i++ {
			_ = p.Publish("k", []byte("m"), nil)
		}
		scheds[run] = p.Schedule()
	}
	if reflect.DeepEqual(scheds[0], scheds[1]) {
		t.Fatalf("seeds 1 and 2 produced identical schedules: %v", scheds[0])
	}
}

func TestWrapOperatorCrashesAreDeterministic(t *testing.T) {
	cfg := Config{Seed: 5, Crash: 0.3}
	// Run the same per-partition record sequence twice and record which
	// indexes crash; the hash decision must not depend on interleaving.
	crashesOf := func() []int {
		var stats Stats
		var crashed []int
		proc := WrapOperator(cfg, &stats, func(ctx *stream.Context, rec stream.Record) []any {
			return []any{rec.Value}
		})
		for i := 0; i < 40; i++ {
			func() {
				defer func() {
					if recover() != nil {
						crashed = append(crashed, i)
					}
				}()
				proc(testContext(t), stream.Record{Value: i})
			}()
		}
		return crashed
	}
	a, b := crashesOf(), crashesOf()
	if len(a) == 0 {
		t.Fatal("crash plan injected nothing; widen probability")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different crash indexes: %v vs %v", a, b)
	}
}

// testContext builds a partition-0 operator context by running a one-shot
// engine batch and capturing the context the operator receives.
func testContext(t *testing.T) *stream.Context {
	t.Helper()
	ch := make(chan *stream.Context, 1)
	eng := stream.New(stream.Config{Partitions: 1, BatchInterval: time.Millisecond},
		func(ctx *stream.Context, rec stream.Record) []any {
			select {
			case ch <- ctx:
			default:
			}
			return nil
		})
	done := make(chan struct{})
	go func() { defer close(done); _ = eng.Run(context.Background()) }()
	_ = eng.Send(stream.Record{Key: "k"})
	eng.Close()
	<-done
	select {
	case ctx := <-ch:
		return ctx
	default:
		t.Fatal("no operator context captured")
		return nil
	}
}
