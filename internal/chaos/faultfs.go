package chaos

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"

	"loglens/internal/fsx"
	"loglens/internal/obs"
)

// Filesystem fault roles, continuing the hash-role sequence so storage
// decisions stay independent of the message-path streams.
const (
	roleFSWrite uint64 = iota + 100
	roleFSShort
)

// Injected storage errors. ErrNoSpace mimics ENOSPC: once the byte
// budget is exhausted every subsequent write fails until Reset.
var (
	ErrInjectedWrite = errors.New("chaos: injected write error")
	ErrShortWrite    = errors.New("chaos: injected short write")
	ErrNoSpace       = errors.New("chaos: no space left on device (injected)")
)

// FSConfig is a seeded storage fault plan. Zero values disable each
// fault, so the zero FSConfig injects nothing.
type FSConfig struct {
	// Seed selects the fault schedule, independently of the message-path
	// Config seed.
	Seed int64
	// WriteError is the probability a WriteFile/Append fails outright,
	// leaving the destination untouched.
	WriteError float64
	// ShortWrite is the probability a WriteFile/Append persists only a
	// seeded prefix of the data before failing — the torn write that
	// atomic rename must mask (and that WAL checksums must detect).
	ShortWrite float64
	// ENOSPCAfter, when positive, is the total byte budget: once
	// cumulative written bytes exceed it, every write fails with
	// ErrNoSpace (a disk filling up mid-checkpoint).
	ENOSPCAfter int64
	// FailAt, when positive, deterministically faults exactly the N-th
	// write operation (1-based over the WriteFile/Append sequence) with
	// the FailKind fault — the crash-matrix knob that walks a fault
	// across every fsx call site of a save sequence, one run per site.
	FailAt int64
	// FailKind selects the FailAt fault: "error" (default), "short"
	// (persist a prefix, then fail), or "enospc".
	FailKind string
}

// FSStats counts injected storage faults.
type FSStats struct {
	// Writes counts WriteFile attempts seen by the wrapper.
	Writes uint64
	// WriteErrors counts writes failed outright.
	WriteErrors uint64
	// ShortWrites counts writes that persisted a partial prefix.
	ShortWrites uint64
	// NoSpace counts writes rejected by the exhausted byte budget.
	NoSpace uint64
	// Bytes is the cumulative byte count written through the wrapper —
	// what the ENOSPC budget is charged against. Tests size budgets by
	// metering a healthy run first.
	Bytes int64
}

// FaultFS wraps an fsx.FS with the seeded storage fault plan — the
// failing-filesystem hook for store snapshot and recovery checkpoint
// tests. Fault decisions are pure hashes of (seed, write index), so a
// given save sequence fails at the same operation every run. Faults are
// recorded to the flight recorder as storage-error events.
type FaultFS struct {
	mu     sync.Mutex
	inner  fsx.FS
	cfg    FSConfig
	events *obs.FlightRecorder
	writes uint64 // write op index, the coordinate of every decision
	bytes  int64  // cumulative bytes written, for the ENOSPC budget
	stats  FSStats
	sched  []string
}

// NewFaultFS wraps inner (fsx.OS when nil) with the fault plan cfg,
// recording injected faults to events (nil disables recording).
func NewFaultFS(inner fsx.FS, cfg FSConfig, events *obs.FlightRecorder) *FaultFS {
	if inner == nil {
		inner = fsx.OS{}
	}
	return &FaultFS{inner: inner, cfg: cfg, events: events}
}

// WriteFile routes one write through the fault plan: outright failure,
// short write (a seeded prefix reaches the disk before the error), or
// ENOSPC once the byte budget is exhausted.
func (f *FaultFS) WriteFile(path string, data []byte, perm fs.FileMode) error {
	return f.faultedWrite(path, data, func(prefix []byte) error {
		return f.inner.WriteFile(path, prefix, perm)
	})
}

// Append routes one WAL-style append through the same fault plan and
// write sequence as WriteFile; a short append leaves a torn tail on the
// file for record checksums to catch.
func (f *FaultFS) Append(path string, data []byte, perm fs.FileMode) error {
	return f.faultedWrite(path, data, func(prefix []byte) error {
		return f.inner.Append(path, prefix, perm)
	})
}

// faultedWrite is the shared fault plan: each call is one operation in
// the write sequence; write is invoked with the full data on the clean
// path or the seeded prefix on a short write.
func (f *FaultFS) faultedWrite(path string, data []byte, write func(prefix []byte) error) error {
	f.mu.Lock()
	seq := f.writes
	f.writes++
	f.stats.Writes++

	kind := ""
	switch {
	case f.cfg.FailAt > 0 && int64(seq)+1 == f.cfg.FailAt:
		kind = f.cfg.FailKind
		if kind == "" {
			kind = "error"
		}
	case f.cfg.ENOSPCAfter > 0 && f.bytes+int64(len(data)) > f.cfg.ENOSPCAfter:
		kind = "enospc"
	}
	cfg := Config{Seed: f.cfg.Seed}
	if kind == "" && cfg.chance(f.cfg.WriteError, roleFSWrite, seq, 0) {
		kind = "error"
	}
	if kind == "" && cfg.chance(f.cfg.ShortWrite, roleFSShort, seq, 0) {
		kind = "short"
	}
	switch kind {
	case "enospc":
		f.stats.NoSpace++
		f.sched = append(f.sched, fmt.Sprintf("w%d:enospc", seq))
		f.mu.Unlock()
		f.record(path, "enospc", seq)
		return fmt.Errorf("chaos: write %s: %w", path, ErrNoSpace)
	case "error":
		f.stats.WriteErrors++
		f.sched = append(f.sched, fmt.Sprintf("w%d:write-error", seq))
		f.mu.Unlock()
		f.record(path, "write-error", seq)
		return fmt.Errorf("chaos: write %s: %w", path, ErrInjectedWrite)
	case "short":
		if len(data) == 0 {
			break // nothing to tear; fall through to the clean write
		}
		// Persist a seeded strict prefix, then fail — the bytes are on
		// disk, the caller sees an error.
		n := int(cfg.magnitude(roleFSShort, seq, 1) * float64(len(data)))
		if n >= len(data) {
			n = len(data) - 1
		}
		f.stats.ShortWrites++
		f.bytes += int64(n)
		f.sched = append(f.sched, fmt.Sprintf("w%d:short=%d/%d", seq, n, len(data)))
		f.mu.Unlock()
		write(data[:n])
		f.record(path, fmt.Sprintf("short write %d/%d bytes", n, len(data)), seq)
		return fmt.Errorf("chaos: write %s: %w", path, ErrShortWrite)
	}
	f.bytes += int64(len(data))
	f.mu.Unlock()
	return write(data)
}

// record emits a storage-error flight event for an injected fault.
func (f *FaultFS) record(path, detail string, seq uint64) {
	f.events.Record(obs.EventStorageError, "chaos-fs",
		fmt.Sprintf("%s: %s", path, detail), int64(seq))
}

// Stats returns a snapshot of the storage fault counters.
func (f *FaultFS) Stats() FSStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.stats
	s.Bytes = f.bytes
	return s
}

// Schedule returns the storage fault schedule so far — the
// reproducibility witness for save sequences.
func (f *FaultFS) Schedule() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.sched...)
}

// Reset clears the byte budget and decision sequence, as if the disk
// were cleared and the process restarted.
func (f *FaultFS) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes = 0
	f.bytes = 0
}

// Passthrough operations: only writes fail by plan. Reads of torn files
// surface corruption naturally (partial JSON fails to parse).

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error { return f.inner.MkdirAll(path, perm) }
func (f *FaultFS) ReadFile(path string) ([]byte, error)         { return f.inner.ReadFile(path) }
func (f *FaultFS) Open(path string) (fsx.File, error)           { return f.inner.Open(path) }
func (f *FaultFS) ReadDir(path string) ([]fs.DirEntry, error)   { return f.inner.ReadDir(path) }
func (f *FaultFS) Remove(path string) error                     { return f.inner.Remove(path) }
func (f *FaultFS) RemoveAll(path string) error                  { return f.inner.RemoveAll(path) }
func (f *FaultFS) Rename(oldpath, newpath string) error         { return f.inner.Rename(oldpath, newpath) }
