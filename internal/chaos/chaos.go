// Package chaos is the deterministic fault-injection layer of the LogLens
// test substrate. Production log pipelines treat delayed, duplicated,
// reordered, and dropped messages — and crashing workers — as the normal
// case; the paper's guarantees (§V-A zero-downtime rebroadcast, §V-B
// timely heartbeat expiry) must hold under exactly those conditions. This
// package manufactures them on demand: a seeded Config describes a fault
// plan, Producer wraps the bus publish path (drop, duplicate, delay,
// reorder within a window), Consumer wraps the bus consume path
// (crash/restart redelivery), and WrapOperator wraps a stream operator
// (worker crash mid-micro-batch, contained by the engine's panic
// isolation).
//
// Determinism is the design center. Per-message fault decisions are pure
// hashes of (seed, role, message coordinates), so they do not depend on
// goroutine interleaving; magnitude draws (delay durations, reorder
// permutations) come from a per-wrapper rand.Rand consumed in call order.
// Same seed, same call sequence → byte-identical fault schedule, which
// Schedule exposes for reproducibility assertions. Combined with
// clock.Fake the whole fault timeline is replayable: delays are released
// when the fake clock crosses their due times.
package chaos

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"loglens/internal/bus"
	"loglens/internal/clock"
	"loglens/internal/stream"
)

// Config is a seeded fault plan. Probabilities are in [0,1]; zero values
// disable the corresponding fault, so the zero Config injects nothing.
type Config struct {
	// Seed selects the fault schedule. Two wrappers built from equal
	// Configs make identical decisions for identical call sequences.
	Seed int64

	// Drop is the probability a published message is swallowed.
	Drop float64
	// Duplicate is the probability a published message is delivered
	// twice.
	Duplicate float64
	// Delay is the probability a published message is held back until
	// the clock passes a due time drawn uniformly from (0, MaxDelay].
	Delay float64
	// MaxDelay bounds injected delays (default 100ms).
	MaxDelay time.Duration
	// ReorderWindow buffers messages and releases each full window in a
	// seeded permuted order — reordering bounded by the window size.
	// Values <= 1 disable reordering.
	ReorderWindow int

	// Crash is the per-record probability that a wrapped stream operator
	// panics before processing — a worker crash mid-micro-batch. The
	// engine contains the panic; the partition (and its state map)
	// survives, the record is dropped.
	Crash float64

	// Redeliver is the per-poll probability that a wrapped consumer,
	// after delivering a batch, seeks back RedeliverDepth messages on
	// one partition it just read — a consumer crash/restart replaying
	// uncommitted work (at-least-once delivery).
	Redeliver float64
	// RedeliverDepth is how far a redelivery rewinds (default 3).
	RedeliverDepth int
}

func (c *Config) setDefaults() {
	if c.MaxDelay <= 0 {
		c.MaxDelay = 100 * time.Millisecond
	}
	if c.RedeliverDepth <= 0 {
		c.RedeliverDepth = 3
	}
}

// Hash roles keep the per-fault decision streams independent: whether
// message 7 is dropped does not change whether it is also delayed.
const (
	roleDrop uint64 = iota + 1
	roleDup
	roleDelay
	roleCrash
	roleRedeliver
)

// splitmix64 is the SplitMix64 finalizer — a strong, cheap bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// chance makes the deterministic per-message decision for one fault role:
// a pure function of (seed, role, a, b), independent of call order.
func (c *Config) chance(p float64, role, a, b uint64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	h := splitmix64(splitmix64(splitmix64(uint64(c.Seed)^role)+a) + b)
	return float64(h>>11)/float64(1<<53) < p
}

// magnitude derives a deterministic uniform value in (0,1] for sizing a
// fault (delay duration, rewind depth).
func (c *Config) magnitude(role, a, b uint64) float64 {
	h := splitmix64(splitmix64(splitmix64(uint64(c.Seed)^role^0xD1CE)+a) + b)
	return (float64(h>>11) + 1) / float64(1<<53)
}

// perm returns the seeded permutation of [0,n) for the k-th released
// window — Fisher-Yates driven by the hash stream, so it depends only on
// (seed, k, n).
func (c *Config) perm(k uint64, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	for i := n - 1; i > 0; i-- {
		h := splitmix64(splitmix64(uint64(c.Seed)^0x5EED0EDE+k) + uint64(i))
		j := int(h % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Stats counts injected faults.
type Stats struct {
	// Published counts Publish calls seen by a Producer.
	Published uint64
	// Delivered counts messages actually handed to the bus (duplicates
	// included, drops excluded).
	Delivered uint64
	Dropped   uint64
	Duplicated uint64
	Delayed   uint64
	// Windows counts reorder windows released in permuted order.
	Windows uint64
	// Crashes counts injected operator panics.
	Crashes uint64
	// Redeliveries counts injected consumer rewinds.
	Redeliveries uint64
}

// Producer wraps the publish path of one topic with the fault plan. Use
// one Producer per publishing goroutine; a Producer is mutex-guarded, but
// the deterministic schedule assumes publishes arrive in a fixed order.
type Producer struct {
	mu     sync.Mutex
	bus    bus.Broker
	topic  string
	clk    clock.Clock
	cfg    Config
	seq    uint64 // input sequence number, the coordinate of every decision
	windows uint64
	held   []heldMsg // delay-faulted, waiting for their due time
	window []heldMsg // reorder buffer, released permuted when full
	stats  Stats
	sched  []string
}

type heldMsg struct {
	seq     uint64
	due     time.Time
	key     string
	value   []byte
	headers map[string]string
}

// NewProducer wraps publishing to topic on b with the fault plan cfg,
// timing delays against clk.
func NewProducer(b bus.Broker, topic string, clk clock.Clock, cfg Config) *Producer {
	cfg.setDefaults()
	if clk == nil {
		clk = clock.New()
	}
	return &Producer{bus: b, topic: topic, clk: clk, cfg: cfg}
}

// Publish routes one message through the fault plan. The returned error
// is the first bus error encountered while releasing messages (dropped
// messages return nil: the fault is the point).
func (p *Producer) Publish(key string, value []byte, headers map[string]string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	seq := p.seq
	p.seq++
	p.stats.Published++

	if err := p.releaseDueLocked(); err != nil {
		return err
	}

	if p.cfg.chance(p.cfg.Drop, roleDrop, seq, 0) {
		p.stats.Dropped++
		p.sched = append(p.sched, fmt.Sprintf("%d:drop", seq))
		return nil
	}
	copies := 1
	if p.cfg.chance(p.cfg.Duplicate, roleDup, seq, 0) {
		copies = 2
		p.stats.Duplicated++
		p.sched = append(p.sched, fmt.Sprintf("%d:dup", seq))
	}
	if p.cfg.chance(p.cfg.Delay, roleDelay, seq, 0) {
		d := time.Duration(p.cfg.magnitude(roleDelay, seq, 1) * float64(p.cfg.MaxDelay))
		if d <= 0 {
			d = time.Nanosecond
		}
		p.stats.Delayed++
		p.sched = append(p.sched, fmt.Sprintf("%d:delay=%v", seq, d))
		due := p.clk.Now().Add(d)
		for i := 0; i < copies; i++ {
			p.held = append(p.held, heldMsg{seq: seq, due: due, key: key, value: value, headers: headers})
		}
		return nil
	}
	for i := 0; i < copies; i++ {
		if err := p.enqueueLocked(heldMsg{seq: seq, key: key, value: value, headers: headers}); err != nil {
			return err
		}
	}
	return nil
}

// Release moves every delay-held message whose due time has passed into
// the delivery path. Call it after advancing a fake clock; under a real
// clock it also runs on every Publish.
func (p *Producer) Release() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.releaseDueLocked()
}

// Flush force-releases everything still held — remaining delays and the
// partial reorder window — ending the fault timeline. Call it before
// asserting on consumer-side totals.
func (p *Producer) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	sortHeld(p.held)
	for _, m := range p.held {
		if err := p.enqueueLocked(m); err != nil {
			return err
		}
	}
	p.held = nil
	return p.emitWindowLocked(len(p.window))
}

// Stats returns a snapshot of the fault counters.
func (p *Producer) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Schedule returns the fault schedule so far, one entry per injected
// fault in decision order — the reproducibility witness: equal seeds and
// equal publish sequences yield equal schedules.
func (p *Producer) Schedule() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.sched...)
}

func (p *Producer) releaseDueLocked() error {
	if len(p.held) == 0 {
		return nil
	}
	now := p.clk.Now()
	var due, rest []heldMsg
	for _, m := range p.held {
		if !m.due.After(now) {
			due = append(due, m)
		} else {
			rest = append(rest, m)
		}
	}
	if len(due) == 0 {
		return nil
	}
	p.held = rest
	sortHeld(due)
	for _, m := range due {
		if err := p.enqueueLocked(m); err != nil {
			return err
		}
	}
	return nil
}

// sortHeld orders released messages by due time, ties by input sequence —
// the deterministic release order.
func sortHeld(ms []heldMsg) {
	sort.SliceStable(ms, func(i, j int) bool {
		if !ms[i].due.Equal(ms[j].due) {
			return ms[i].due.Before(ms[j].due)
		}
		return ms[i].seq < ms[j].seq
	})
}

// enqueueLocked routes a message through the reorder window (or straight
// to the bus when reordering is disabled).
func (p *Producer) enqueueLocked(m heldMsg) error {
	if p.cfg.ReorderWindow <= 1 {
		return p.publishLocked(m)
	}
	p.window = append(p.window, m)
	if len(p.window) < p.cfg.ReorderWindow {
		return nil
	}
	return p.emitWindowLocked(len(p.window))
}

// emitWindowLocked releases the first n buffered messages in a seeded
// permuted order.
func (p *Producer) emitWindowLocked(n int) error {
	if n == 0 {
		return nil
	}
	batch := p.window[:n]
	p.window = p.window[n:]
	k := p.windows
	p.windows++
	if p.cfg.ReorderWindow > 1 {
		p.stats.Windows++
		p.sched = append(p.sched, fmt.Sprintf("w%d:perm%v", k, p.cfg.perm(k, n)))
	}
	order := p.cfg.perm(k, n)
	for _, i := range order {
		if err := p.publishLocked(batch[i]); err != nil {
			return err
		}
	}
	return nil
}

func (p *Producer) publishLocked(m heldMsg) error {
	_, _, err := p.bus.Publish(p.topic, m.key, m.value, m.headers)
	if err == nil {
		p.stats.Delivered++
	}
	return err
}

// WrapOperator wraps a stream operator with seeded worker crashes: before
// processing, the wrapper may panic — the engine's panic containment
// turns that into a dropped record on a surviving partition, which is
// exactly a worker crash/restart mid-micro-batch (state maps and the
// zero-downtime guarantee must hold through it). The crash decision is a
// pure hash of (seed, partition, per-partition record index), so it is
// deterministic no matter how partitions interleave.
func WrapOperator(cfg Config, stats *Stats, proc stream.ProcessFunc) stream.ProcessFunc {
	cfg.setDefaults()
	var mu sync.Mutex
	indexes := make(map[int]uint64)
	return func(ctx *stream.Context, rec stream.Record) []any {
		mu.Lock()
		idx := indexes[ctx.Partition()]
		indexes[ctx.Partition()] = idx + 1
		crash := cfg.chance(cfg.Crash, roleCrash, uint64(ctx.Partition()), idx)
		if crash {
			stats.Crashes++
		}
		mu.Unlock()
		if crash {
			panic(fmt.Sprintf("chaos: injected worker crash (partition %d, record %d)", ctx.Partition(), idx))
		}
		return proc(ctx, rec)
	}
}

// Consumer wraps a bus consumer with crash/restart redelivery faults and
// records every delivered (topic, partition, offset) so scenarios can
// assert delivery invariants: without injected redelivery, offsets within
// a partition must never regress; with it, regressions happen only at
// injected rewind points and every message is still delivered at least
// once.
type Consumer struct {
	mu    sync.Mutex
	c     bus.Reader
	cfg   Config
	polls uint64
	// frontier is the highest delivered offset per partition.
	frontier map[partitionKey]int64
	// floors tracks how far an injected rewind may legitimately re-read.
	floors map[partitionKey]int64
	stats  Stats
	sched  []string
	// violations records offsets that regressed without a rewind.
	violations []string
}

type partitionKey struct {
	topic     string
	partition int
}

// NewConsumer wraps c with the fault plan cfg.
func NewConsumer(c bus.Reader, cfg Config) *Consumer {
	cfg.setDefaults()
	return &Consumer{
		c:        c,
		cfg:      cfg,
		frontier: make(map[partitionKey]int64),
		floors:   make(map[partitionKey]int64),
	}
}

// TryPoll polls without blocking, checks the delivery invariant, and may
// inject a crash/restart rewind for the next poll.
func (cc *Consumer) TryPoll(max int) []bus.Message {
	msgs := cc.c.TryPoll(max)
	cc.observe(msgs)
	return msgs
}

// observe verifies monotonicity against the recorded frontier and floors,
// then possibly injects a rewind.
func (cc *Consumer) observe(msgs []bus.Message) {
	if len(msgs) == 0 {
		return
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	poll := cc.polls
	cc.polls++
	for _, m := range msgs {
		k := partitionKey{m.Topic, m.Partition}
		front, seen := cc.frontier[k]
		if seen && m.Offset <= front {
			// Regression: legitimate only above the rewind floor.
			if floor, ok := cc.floors[k]; !ok || m.Offset < floor {
				cc.violations = append(cc.violations, fmt.Sprintf(
					"%s/%d: offset %d delivered after frontier %d without a rewind",
					m.Topic, m.Partition, m.Offset, front))
			}
		}
		if !seen || m.Offset > front {
			cc.frontier[k] = m.Offset
		}
	}
	if cc.cfg.chance(cc.cfg.Redeliver, roleRedeliver, poll, 0) {
		// Crash/restart: rewind one partition we just read by up to
		// RedeliverDepth messages.
		m := msgs[int(splitmix64(uint64(cc.cfg.Seed)+poll)%uint64(len(msgs)))]
		k := partitionKey{m.Topic, m.Partition}
		depth := int64(cc.cfg.magnitude(roleRedeliver, poll, 1)*float64(cc.cfg.RedeliverDepth)) + 1
		if depth > int64(cc.cfg.RedeliverDepth) {
			depth = int64(cc.cfg.RedeliverDepth)
		}
		target := cc.frontier[k] + 1 - depth
		if target < 0 {
			target = 0
		}
		if err := cc.c.Seek(m.Topic, m.Partition, target); err == nil {
			cc.stats.Redeliveries++
			cc.floors[k] = target
			cc.sched = append(cc.sched, fmt.Sprintf("p%d:rewind %s/%d->%d", poll, m.Topic, m.Partition, target))
		}
	}
}

// Stats returns a snapshot of the fault counters.
func (cc *Consumer) Stats() Stats {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.stats
}

// Schedule returns the injected-rewind schedule.
func (cc *Consumer) Schedule() []string {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return append([]string(nil), cc.sched...)
}

// Violations returns every offset regression not explained by an injected
// rewind — the consumer-group-offsets-never-regress invariant witness.
func (cc *Consumer) Violations() []string {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return append([]string(nil), cc.violations...)
}
