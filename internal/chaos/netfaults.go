package chaos

import (
	"net"
	"sync"
	"time"

	"loglens/internal/clock"
)

// Network faults for the intake front door. These wrap the *client* side
// of a connection: tests dial the intake listener, wrap the conn, and
// manufacture the three pathologies a network front door must survive —
// a slow link trickling bytes, a reader that stalls mid-frame and holds
// the socket hostage, and connection churn. The wrappers use the
// injected clock for pacing, so a clock.Fake makes the slow-link
// timeline drivable.

// SlowConn throttles writes to a byte budget per interval — a client
// behind a congested or shaped link. Reads pass through untouched.
type SlowConn struct {
	net.Conn
	clk      clock.Clock
	chunk    int           // bytes written per interval
	interval time.Duration // pause between chunks
}

// NewSlowConn wraps conn so each Write trickles out in chunk-byte pieces
// with interval between them (chunk <= 0 defaults to 1).
func NewSlowConn(conn net.Conn, clk clock.Clock, chunk int, interval time.Duration) *SlowConn {
	if clk == nil {
		clk = clock.New()
	}
	if chunk <= 0 {
		chunk = 1
	}
	return &SlowConn{Conn: conn, clk: clk, chunk: chunk, interval: interval}
}

func (c *SlowConn) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		n := c.chunk
		if n > len(p) {
			n = len(p)
		}
		w, err := c.Conn.Write(p[:n])
		total += w
		if err != nil {
			return total, err
		}
		p = p[n:]
		if len(p) > 0 && c.interval > 0 {
			c.clk.Sleep(c.interval)
		}
	}
	return total, nil
}

// StallConn writes normally until budget bytes have passed, then blocks
// every further Write until Release (or Close) — a peer that sends half
// a frame and goes silent while keeping the socket open. The intake
// listener must isolate it: one goroutine parks, the accept loop and
// every other connection keep moving.
type StallConn struct {
	net.Conn
	mu      sync.Mutex
	budget  int
	stalled chan struct{} // closed by Release
	closed  chan struct{} // closed by Close
	once    sync.Once
}

// NewStallConn wraps conn to stall after budget written bytes.
func NewStallConn(conn net.Conn, budget int) *StallConn {
	return &StallConn{
		Conn:    conn,
		budget:  budget,
		stalled: make(chan struct{}),
		closed:  make(chan struct{}),
	}
}

func (c *StallConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	allowed := c.budget
	if allowed > len(p) {
		allowed = len(p)
	}
	c.budget -= allowed
	c.mu.Unlock()
	total := 0
	if allowed > 0 {
		n, err := c.Conn.Write(p[:allowed])
		total += n
		if err != nil || total == len(p) {
			return total, err
		}
	}
	// Out of budget: park until released or closed.
	select {
	case <-c.stalled:
	case <-c.closed:
		return total, net.ErrClosed
	}
	n, err := c.Conn.Write(p[total:])
	return total + n, err
}

// Release unblocks the stall; subsequent writes pass through.
func (c *StallConn) Release() {
	c.once.Do(func() { close(c.stalled) })
}

func (c *StallConn) Close() error {
	select {
	case <-c.closed:
	default:
		close(c.closed)
	}
	return c.Conn.Close()
}

// Churn opens conns sequential short-lived TCP connections to addr, each
// writing one payload and closing — the connect/teardown storm of a
// flapping fleet. It returns how many connections both dialed and wrote
// successfully; per-connection errors are expected under churn (the
// listener may be at its connection cap) and are counted, not fatal.
func Churn(addr string, conns int, payload func(i int) []byte) (succeeded int) {
	for i := 0; i < conns; i++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			continue
		}
		_, werr := c.Write(payload(i))
		c.Close()
		if werr == nil {
			succeeded++
		}
	}
	return succeeded
}
