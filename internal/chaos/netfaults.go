package chaos

import (
	"io"
	"net"
	"sync"
	"time"

	"loglens/internal/clock"
)

// Network faults for the intake front door. These wrap the *client* side
// of a connection: tests dial the intake listener, wrap the conn, and
// manufacture the three pathologies a network front door must survive —
// a slow link trickling bytes, a reader that stalls mid-frame and holds
// the socket hostage, and connection churn. The wrappers use the
// injected clock for pacing, so a clock.Fake makes the slow-link
// timeline drivable.

// SlowConn throttles writes to a byte budget per interval — a client
// behind a congested or shaped link. Reads pass through untouched.
type SlowConn struct {
	net.Conn
	clk      clock.Clock
	chunk    int           // bytes written per interval
	interval time.Duration // pause between chunks
}

// NewSlowConn wraps conn so each Write trickles out in chunk-byte pieces
// with interval between them (chunk <= 0 defaults to 1).
func NewSlowConn(conn net.Conn, clk clock.Clock, chunk int, interval time.Duration) *SlowConn {
	if clk == nil {
		clk = clock.New()
	}
	if chunk <= 0 {
		chunk = 1
	}
	return &SlowConn{Conn: conn, clk: clk, chunk: chunk, interval: interval}
}

func (c *SlowConn) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		n := c.chunk
		if n > len(p) {
			n = len(p)
		}
		w, err := c.Conn.Write(p[:n])
		total += w
		if err != nil {
			return total, err
		}
		p = p[n:]
		if len(p) > 0 && c.interval > 0 {
			c.clk.Sleep(c.interval)
		}
	}
	return total, nil
}

// StallConn writes normally until budget bytes have passed, then blocks
// every further Write until Release (or Close) — a peer that sends half
// a frame and goes silent while keeping the socket open. The intake
// listener must isolate it: one goroutine parks, the accept loop and
// every other connection keep moving.
type StallConn struct {
	net.Conn
	mu      sync.Mutex
	budget  int
	stalled chan struct{} // closed by Release
	closed  chan struct{} // closed by Close
	once    sync.Once
}

// NewStallConn wraps conn to stall after budget written bytes.
func NewStallConn(conn net.Conn, budget int) *StallConn {
	return &StallConn{
		Conn:    conn,
		budget:  budget,
		stalled: make(chan struct{}),
		closed:  make(chan struct{}),
	}
}

func (c *StallConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	allowed := c.budget
	if allowed > len(p) {
		allowed = len(p)
	}
	c.budget -= allowed
	c.mu.Unlock()
	total := 0
	if allowed > 0 {
		n, err := c.Conn.Write(p[:allowed])
		total += n
		if err != nil || total == len(p) {
			return total, err
		}
	}
	// Out of budget: park until released or closed.
	select {
	case <-c.stalled:
	case <-c.closed:
		return total, net.ErrClosed
	}
	n, err := c.Conn.Write(p[total:])
	return total + n, err
}

// Release unblocks the stall; subsequent writes pass through.
func (c *StallConn) Release() {
	c.once.Do(func() { close(c.stalled) })
}

func (c *StallConn) Close() error {
	select {
	case <-c.closed:
	default:
		close(c.closed)
	}
	return c.Conn.Close()
}

// Proxy is a TCP man-in-the-middle for cluster chaos: nodes connect to
// the proxy instead of the broker, and the test flips faults on the
// link between them. Partition severs every proxied connection and
// refuses new ones until Heal; SetSlowLink throttles both directions of
// every connection established afterwards. Unlike the conn wrappers
// above, the Proxy faults a live, reconnecting client mid-run — the
// shape of failure the netbus transport must absorb.
type Proxy struct {
	target string
	clk    clock.Clock

	mu          sync.Mutex
	ln          net.Listener
	pairs       map[net.Conn]net.Conn // downstream -> upstream
	partitioned bool
	slowChunk   int
	slowEvery   time.Duration
	closed      bool
	wg          sync.WaitGroup
}

// NewProxy starts a proxy on loopback forwarding to target.
func NewProxy(target string, clk clock.Clock) (*Proxy, error) {
	if clk == nil {
		clk = clock.New()
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		target: target,
		clk:    clk,
		ln:     ln,
		pairs:  make(map[net.Conn]net.Conn),
	}
	p.wg.Add(1)
	go p.acceptLoop(ln)
	return p, nil
}

// Addr returns the address nodes should dial instead of the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Partition cuts the link: live connections drop, new ones are refused
// until Heal. The listener stays up — a partition is not a dead peer,
// and the dialing side must keep retrying into it.
func (p *Proxy) Partition() {
	p.mu.Lock()
	p.partitioned = true
	pairs := p.pairs
	p.pairs = make(map[net.Conn]net.Conn)
	p.mu.Unlock()
	for down, up := range pairs {
		down.Close()
		up.Close()
	}
}

// Heal ends a partition; the next dial goes through.
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.partitioned = false
	p.mu.Unlock()
}

// SetSlowLink throttles every subsequently established connection to
// chunk bytes per interval in both directions (0 chunk restores full
// speed). Existing connections are untouched; pair with Partition to
// force traffic onto the slow path.
func (p *Proxy) SetSlowLink(chunk int, interval time.Duration) {
	p.mu.Lock()
	p.slowChunk = chunk
	p.slowEvery = interval
	p.mu.Unlock()
}

// Close shuts the proxy and every proxied connection down.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	pairs := p.pairs
	p.pairs = make(map[net.Conn]net.Conn)
	p.mu.Unlock()
	p.ln.Close()
	for down, up := range pairs {
		down.Close()
		up.Close()
	}
	p.wg.Wait()
}

func (p *Proxy) acceptLoop(ln net.Listener) {
	defer p.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed || p.partitioned {
			p.mu.Unlock()
			conn.Close()
			continue
		}
		chunk, interval := p.slowChunk, p.slowEvery
		p.mu.Unlock()
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			conn.Close()
			continue
		}
		p.mu.Lock()
		if p.closed || p.partitioned {
			p.mu.Unlock()
			conn.Close()
			up.Close()
			continue
		}
		p.pairs[conn] = up
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pipe(conn, up, chunk, interval)
		go p.pipe(up, conn, chunk, interval)
	}
}

// pipe copies src to dst until either side dies, throttling writes when
// a slow link is configured, then tears the pair down.
func (p *Proxy) pipe(dst, src net.Conn, chunk int, interval time.Duration) {
	defer p.wg.Done()
	var w io.Writer = dst
	if chunk > 0 && interval > 0 {
		w = NewSlowConn(dst, p.clk, chunk, interval)
	}
	io.Copy(w, src)
	dst.Close()
	src.Close()
	p.mu.Lock()
	delete(p.pairs, dst)
	delete(p.pairs, src)
	p.mu.Unlock()
}

// Restartable is the broker surface BrokerKill drives: netbus.Server
// satisfies it (Stop severs the network face, Listen resurrects it on
// the same durable state).
type Restartable interface {
	Addr() string
	Stop()
	Listen(addr string) (string, error)
}

// BrokerKill is the crash/restart primitive for a broker node: Kill
// remembers the address and severs it, Restart brings the same broker
// back there. The log, group offsets, and dedup state survive — the
// durable-log crash model the storage engine's tests pin down, applied
// to the transport tier.
type BrokerKill struct {
	srv  Restartable
	addr string
	down bool
}

// NewBrokerKill wraps a running broker.
func NewBrokerKill(srv Restartable) *BrokerKill {
	return &BrokerKill{srv: srv, addr: srv.Addr()}
}

// Kill severs the broker's network face. No-op if already down.
func (k *BrokerKill) Kill() {
	if k.down {
		return
	}
	k.down = true
	k.srv.Stop()
}

// Restart brings the broker back on its original address.
func (k *BrokerKill) Restart() error {
	if !k.down {
		return nil
	}
	if _, err := k.srv.Listen(k.addr); err != nil {
		return err
	}
	k.down = false
	return nil
}

// Churn opens conns sequential short-lived TCP connections to addr, each
// writing one payload and closing — the connect/teardown storm of a
// flapping fleet. It returns how many connections both dialed and wrote
// successfully; per-connection errors are expected under churn (the
// listener may be at its connection cap) and are counted, not fatal.
func Churn(addr string, conns int, payload func(i int) []byte) (succeeded int) {
	for i := 0; i < conns; i++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			continue
		}
		_, werr := c.Write(payload(i))
		c.Close()
		if werr == nil {
			succeeded++
		}
	}
	return succeeded
}
