package chaos

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"loglens/internal/agent"
	"loglens/internal/bus"
	"loglens/internal/core"
	"loglens/internal/fsx"
	"loglens/internal/logtypes"
	"loglens/internal/modelmgr"
	"loglens/internal/netbus"
	"loglens/internal/recovery"
	"loglens/internal/testutil"
)

// clusterCorpus builds a training set and a production stream with a
// known parsed/unparsed split (same shape as core's conservation
// corpus, regenerated here because test helpers don't cross packages).
func clusterCorpus(nParsed, nUnparsed int) (training []logtypes.Log, prod []string) {
	base := time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("req-%03d", i)
		t0 := base.Add(time.Duration(i*5) * time.Second)
		training = append(training,
			logtypes.Log{Source: "web", Seq: uint64(2*i + 1), Raw: fmt.Sprintf(
				"%s 10.0.0.%d request %s received path /api/items/%d",
				t0.Format("2006/01/02 15:04:05.000"), i%5+1, id, i%40)},
			logtypes.Log{Source: "web", Seq: uint64(2*i + 2), Raw: fmt.Sprintf(
				"%s 10.0.0.%d request %s served bytes %d",
				t0.Add(time.Second).Format("2006/01/02 15:04:05.000"), i%5+1, id, 512+i)},
		)
	}
	prodBase := base.Add(time.Hour)
	for i := 0; i < nParsed/2; i++ {
		id := fmt.Sprintf("req-9%02d", i)
		t0 := prodBase.Add(time.Duration(i*3) * time.Second)
		prod = append(prod,
			fmt.Sprintf("%s 10.0.0.1 request %s received path /api/items/1",
				t0.Format("2006/01/02 15:04:05.000"), id),
			fmt.Sprintf("%s 10.0.0.1 request %s served bytes 700",
				t0.Add(time.Second).Format("2006/01/02 15:04:05.000"), id),
		)
	}
	for i := 0; i < nUnparsed; i++ {
		prod = append(prod, fmt.Sprintf("segfault %d at 0x0 in worker thread", i))
	}
	return training, prod
}

// offsetMonitor samples a group's committed offsets directly off the
// broker's bus (the in-memory truth, reachable even while the network
// face is down) and records the first regression it sees.
type offsetMonitor struct {
	b     *bus.Bus
	group string

	mu   sync.Mutex
	high map[string]int64
	err  error

	stop chan struct{}
	done chan struct{}
}

func startOffsetMonitor(b *bus.Bus, group string) *offsetMonitor {
	m := &offsetMonitor{
		b:     b,
		group: group,
		high:  make(map[string]int64),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go func() {
		defer close(m.done)
		for {
			select {
			case <-m.stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			m.sample()
		}
	}()
	return m
}

func (m *offsetMonitor) sample() {
	offs := m.b.GroupOffsets(m.group)
	m.mu.Lock()
	defer m.mu.Unlock()
	for key, off := range offs {
		if prev, ok := m.high[key]; ok && off < prev && m.err == nil {
			m.err = fmt.Errorf("committed offset regressed: %s %d -> %d", key, prev, off)
		}
		if off > m.high[key] {
			m.high[key] = off
		}
	}
}

func (m *offsetMonitor) finish(t *testing.T) {
	t.Helper()
	close(m.stop)
	<-m.done
	m.sample()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		t.Error(m.err)
	}
}

// TestClusterChaos runs the full three-node deployment — agent
// (publisher + disk spool), broker (netbus server), worker (core
// pipeline on a netbus client) — as separate goroutine nodes over real
// loopback TCP, drives Partition, SlowLink, and BrokerKill faults
// through the middle of the stream, and proves the transport's
// guarantees end to end:
//
//   - conservation: lines sent == parsed + unparsed + shed, exactly;
//   - committed offsets never regress, sampled throughout;
//   - no line is appended or detected twice (idempotent producer +
//     reader frontier);
//   - a model rebroadcast rides the same faulted bus exactly once.
func TestClusterChaos(t *testing.T) {
	const nParsed, nUnparsed = 240, 100
	training, prod := clusterCorpus(nParsed, nUnparsed)
	n := len(prod)
	if n != nParsed+nUnparsed {
		t.Fatalf("corpus size %d", n)
	}

	// --- Broker node: the authoritative log behind the network face.
	srv := netbus.NewServer(bus.New())
	brokerAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Fault injectors: one proxy per cluster link, and the kill switch.
	agentProxy, err := NewProxy(brokerAddr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer agentProxy.Close()
	workerProxy, err := NewProxy(brokerAddr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer workerProxy.Close()

	clientOpts := func(role string, seed int64) netbus.Options {
		return netbus.Options{
			Role:           role,
			BackoffBase:    5 * time.Millisecond,
			BackoffMax:     50 * time.Millisecond,
			RequestTimeout: 2 * time.Second,
			Seed:           seed,
		}
	}
	connect := func(addr, role string, seed int64) *netbus.Client {
		c := netbus.Dial(addr, clientOpts(role, seed))
		t.Cleanup(c.Close)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := c.WaitConnected(ctx); err != nil {
			t.Fatalf("%s WaitConnected: %v", role, err)
		}
		return c
	}

	// --- Worker node: the pipeline runs unchanged against the remote
	// broker through its proxy.
	workerClient := connect(workerProxy.Addr(), "worker", 1)
	p, err := core.New(core.Config{
		Bus:              workerClient,
		DisableHeartbeat: true,
		Recovery:         core.RecoveryConfig{Dir: t.TempDir()}, // commit gate on
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Train("cluster-v1", training); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}

	// --- Watcher node: counts control instructions off the broker
	// directly; every announce must arrive exactly once despite faults.
	watchClient := connect(brokerAddr, "worker", 2)
	watchReader, err := watchClient.Subscribe("chaos-watch", modelmgr.ControlTopic)
	if err != nil {
		t.Fatal(err)
	}
	var instructions atomic.Uint64
	watchCtx, watchCancel := context.WithCancel(context.Background())
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		for {
			msgs, err := watchReader.Poll(watchCtx, 0)
			if err != nil {
				return
			}
			instructions.Add(uint64(len(msgs)))
		}
	}()

	// --- Agent node: disk-spooled publisher through its proxy.
	agentClient := connect(agentProxy.Addr(), "agent", 3)
	spool, err := netbus.OpenSpool(netbus.SpoolOptions{
		FS:   fsx.OS{},
		Path: filepath.Join(t.TempDir(), "spool.dat"),
	})
	if err != nil {
		t.Fatal(err)
	}
	pub := netbus.NewPublisher(agentClient, agent.LogsTopic, spool)
	defer pub.Close()

	monitor := startOffsetMonitor(srv.Bus(), "log-manager")

	send := func(lo, hi int) { // 1-based inclusive line numbers
		t.Helper()
		for i := lo; i <= hi; i++ {
			if err := pub.Send("web", uint64(i), prod[i-1]); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitAcked := func(want int) {
		t.Helper()
		testutil.WaitUntil(t, 30*time.Second, func() bool {
			return pub.Acked() >= uint64(want)
		}, fmt.Sprintf("publisher did not reach %d acks (at %d, spool %d)", want, pub.Acked(), spool.Len()))
	}
	waitForwarded := func(want int) {
		t.Helper()
		testutil.WaitUntil(t, 30*time.Second, func() bool {
			return p.Metrics().Snapshot().Counter("core_lines_total") >= uint64(want)
		}, fmt.Sprintf("worker did not forward %d lines", want))
	}

	// Phase 1 — clean run: the first fifth flows with no faults.
	c1 := n / 5
	send(1, c1)
	waitAcked(c1)
	waitForwarded(c1)

	// Phase 2 — agent partition: the agent's link is cut mid-stream;
	// lines land in the spool, then drain in order on heal.
	agentProxy.Partition()
	c2 := 2 * n / 5
	send(c1+1, c2)
	if spool.Len() == 0 {
		t.Fatal("partitioned agent should be spooling")
	}
	time.Sleep(50 * time.Millisecond) // let retries chew on the dead link
	agentProxy.Heal()
	waitAcked(c2)
	waitForwarded(c2)

	// Phase 3 — slow link: the worker's connection is severed and comes
	// back throttled; the stream must keep flowing, just slower.
	workerProxy.SetSlowLink(512, time.Millisecond)
	workerProxy.Partition()
	workerProxy.Heal()
	c3 := 3 * n / 5
	send(c2+1, c3)
	waitAcked(c3)
	waitForwarded(c3)
	workerProxy.SetSlowLink(0, 0) // full speed for the next phases

	// Phase 4 — broker kill: the broker's network face dies with lines
	// in flight; its log survives. The spool absorbs the outage and no
	// acked line is lost or re-appended.
	kill := NewBrokerKill(srv)
	kill.Kill()
	c4 := 4 * n / 5
	send(c3+1, c4)
	time.Sleep(50 * time.Millisecond)
	if err := kill.Restart(); err != nil {
		t.Fatalf("broker restart: %v", err)
	}
	waitAcked(c4)
	waitForwarded(c4)

	// Phase 5 — rebroadcast through the faulted bus: retrain and
	// announce; then bounce the broker and confirm the instruction is
	// not redelivered to the watcher group.
	if _, _, err := p.Train("cluster-v2", training); err != nil {
		t.Fatal(err)
	}
	if err := p.Controller().Announce(modelmgr.Instruction{Op: modelmgr.OpUpdate, ModelID: "cluster-v2"}); err != nil {
		t.Fatal(err)
	}
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		return instructions.Load() == 1
	}, "watcher did not receive the announce")
	kill.Kill()
	time.Sleep(50 * time.Millisecond)
	if err := kill.Restart(); err != nil {
		t.Fatal(err)
	}

	// Final stretch, then drain everything.
	send(c4+1, n)
	waitAcked(n)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := pub.Drain(ctx); err != nil {
		t.Fatalf("publisher drain: %v", err)
	}
	waitForwarded(n)
	if err := p.Drain(30 * time.Second); err != nil {
		t.Fatalf("pipeline drain: %v", err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	watchCancel()
	<-watchDone
	monitor.finish(t)

	// --- Invariants.
	shed := spool.Shed()
	if shed != 0 {
		t.Errorf("spool shed %d lines under the default cap; outages were shorter than the spool", shed)
	}
	snap := p.Metrics().Snapshot()
	parsed := snap.Counter("core_parsed_total")
	unparsed := snap.Counter("core_unparsed_total")
	if parsed+unparsed+shed != uint64(n) {
		t.Errorf("conservation broken: parsed %d + unparsed %d + shed %d != sent %d",
			parsed, unparsed, shed, n)
	}
	if parsed != nParsed || unparsed != nUnparsed {
		t.Errorf("split = %d parsed / %d unparsed, want %d/%d", parsed, unparsed, nParsed, nUnparsed)
	}
	if got := snap.Counter("stream_records_total", "engine", "main"); got != uint64(n) {
		t.Errorf("stream_records_total = %d, want %d (a line was detected twice or lost)", got, n)
	}
	if got := snap.Counter("core_lines_total"); got != uint64(n) {
		t.Errorf("core_lines_total = %d, want %d", got, n)
	}

	// The broker's log holds each line exactly once: the idempotent
	// producer absorbed every re-send across four outages.
	b := srv.Bus()
	parts, err := b.Partitions(agent.LogsTopic)
	if err != nil {
		t.Fatal(err)
	}
	seqs := make(map[string]int)
	total := 0
	for part := 0; part < parts; part++ {
		end, _ := b.EndOffset(agent.LogsTopic, part)
		msgs, err := b.ReadFrom(agent.LogsTopic, part, 0, int(end))
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range msgs {
			if m.Headers[agent.HeaderHeartbeat] != "" {
				continue
			}
			seqs[m.Headers[agent.HeaderSeq]]++
			total++
		}
	}
	if total != n {
		t.Errorf("broker log holds %d lines, want %d", total, n)
	}
	for seq, count := range seqs {
		if count != 1 {
			t.Errorf("seq %s appended %d times", seq, count)
		}
	}

	// Rebroadcast landed exactly once and took effect.
	if got := instructions.Load(); got != 1 {
		t.Errorf("watcher saw %d instructions, want exactly 1", got)
	}
	if m := p.Model(); m == nil || m.ID != "cluster-v2" {
		t.Errorf("model after rebroadcast = %+v, want cluster-v2", m)
	}

	// Nothing was quarantined: the balance above is the whole story.
	if end, err := b.EndOffset(recovery.DeadLetterTopic, 0); err == nil && end != 0 {
		t.Errorf("deadletter has %d entries, want 0", end)
	}
}
