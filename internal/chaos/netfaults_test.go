package chaos

import (
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"loglens/internal/clock"
	"loglens/internal/intake"
	"loglens/internal/testutil"
)

// startIntakeTCP brings up a TCP-only intake service with no rate limit
// and a published-line counter.
func startIntakeTCP(t *testing.T, mutate func(*intake.Config)) (*intake.Service, *atomic.Uint64) {
	t.Helper()
	cfg := intake.Config{SyslogTCP: "127.0.0.1:0"}
	if mutate != nil {
		mutate(&cfg)
	}
	var published atomic.Uint64
	svc := intake.New(cfg, func(string, uint64, []byte, time.Time) { published.Add(1) })
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc, &published
}

// TestSlowLinkDelivers: a client trickling bytes a few at a time (a
// congested link) must still get every frame through, with no frame
// errors and no effect on the listener.
func TestSlowLinkDelivers(t *testing.T) {
	svc, published := startIntakeTCP(t, nil)
	raw, err := net.Dial("tcp", svc.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	slow := NewSlowConn(raw, clock.New(), 7, time.Millisecond)

	const frames = 10
	var b strings.Builder
	for i := 0; i < frames; i++ {
		fmt.Fprintf(&b, "<13>Feb  5 17:32:18 slowhost app: dribble %d\n", i)
	}
	if _, err := slow.Write([]byte(b.String())); err != nil {
		t.Fatal(err)
	}
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		return published.Load() == frames
	}, "slow-link frames not all published")
	if st := svc.Stats(); st.FrameErrors != 0 || st.Malformed != 0 {
		t.Errorf("slow link produced frame errors: %+v", st)
	}
}

// TestStalledReaderDoesNotBlockOthers: a peer that sends half a frame
// and goes silent must hold only its own connection hostage. Other
// tenants keep flowing; when the staller resumes, its frames complete.
func TestStalledReaderDoesNotBlockOthers(t *testing.T) {
	svc, published := startIntakeTCP(t, nil)

	rawStall, err := net.Dial("tcp", svc.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	stall := NewStallConn(rawStall, 10) // stalls mid-PRI of the first frame
	defer stall.Close()

	const stallFrames = 5
	var sb strings.Builder
	for i := 0; i < stallFrames; i++ {
		fmt.Fprintf(&sb, "<13>Feb  5 17:32:18 staller app: held %d\n", i)
	}
	stallDone := make(chan error, 1)
	go func() {
		_, werr := stall.Write([]byte(sb.String()))
		stallDone <- werr
	}()

	// A healthy tenant is untouched while the staller is parked.
	healthy, err := net.Dial("tcp", svc.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	const healthyFrames = 20
	var hb strings.Builder
	for i := 0; i < healthyFrames; i++ {
		fmt.Fprintf(&hb, "<13>Feb  5 17:32:18 healthy app: flow %d\n", i)
	}
	if _, err := healthy.Write([]byte(hb.String())); err != nil {
		t.Fatal(err)
	}
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		return published.Load() == healthyFrames
	}, "healthy tenant blocked behind a stalled peer")

	// Release the stall: the held frames complete.
	stall.Release()
	if werr := <-stallDone; werr != nil {
		t.Fatalf("stalled writer failed after release: %v", werr)
	}
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		return published.Load() == healthyFrames+stallFrames
	}, "stalled tenant's frames lost after release")
}

// TestConnectionChurn: a flapping fleet of short-lived connections —
// dial, one frame, close — must neither lose lines nor leak connection
// slots.
func TestConnectionChurn(t *testing.T) {
	svc, published := startIntakeTCP(t, nil)

	const conns = 300
	succeeded := Churn(svc.TCPAddr(), conns, func(i int) []byte {
		return []byte(fmt.Sprintf("<13>Feb  5 17:32:18 churn app: conn %d\n", i))
	})
	if succeeded != conns {
		t.Fatalf("churn succeeded on %d/%d connections", succeeded, conns)
	}
	testutil.WaitUntil(t, 30*time.Second, func() bool {
		return published.Load() == conns
	}, "churned lines not all published")
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		return svc.Stats().ActiveConns == 0
	}, "connection slots leaked after churn")
	if st := svc.Stats(); st.ConnsRejected != 0 || st.FrameErrors != 0 {
		t.Errorf("churn tripped rejections or frame errors: %+v", st)
	}
}
