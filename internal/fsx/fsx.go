// Package fsx abstracts the filesystem operations the persistence and
// recovery layers depend on, so tests can substitute a fault-injecting
// implementation (see internal/chaos.FaultFS) and so checkpoint writes
// can be made atomic in exactly one place.
//
// The contract recovery code relies on: WriteFileAtomic either leaves
// the previous file contents fully intact or fully replaces them — a
// crash (or injected fault) mid-write never exposes a partial file at
// the destination path.
package fsx

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is an open read-only file handle: random-access reads for sealed
// segment files, whose footers and documents are fetched by offset
// without loading the whole file.
type File interface {
	io.ReaderAt
	io.Closer
}

// FS is the minimal filesystem surface used by store snapshots, the
// segment-file storage engine, and recovery checkpoints. All paths are
// OS paths, not fs.FS slash paths.
type FS interface {
	MkdirAll(path string, perm fs.FileMode) error
	WriteFile(path string, data []byte, perm fs.FileMode) error
	// Append appends data to path, creating the file when missing — the
	// write-ahead-log seam. Unlike WriteFile it is not atomic: a fault
	// mid-append can leave a torn tail, which WAL readers must detect
	// (per-record checksums) and writers must repair (atomic rewrite).
	Append(path string, data []byte, perm fs.FileMode) error
	ReadFile(path string) ([]byte, error)
	// Open returns a random-access read handle on path.
	Open(path string) (File, error)
	ReadDir(path string) ([]fs.DirEntry, error)
	Remove(path string) error
	RemoveAll(path string) error
	Rename(oldpath, newpath string) error
}

// OS is the passthrough implementation backed by the real filesystem.
type OS struct{}

func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) WriteFile(path string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(path, data, perm)
}
func (OS) Append(path string, data []byte, perm fs.FileMode) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, perm)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}
func (OS) ReadFile(path string) ([]byte, error)       { return os.ReadFile(path) }
func (OS) Open(path string) (File, error)             { return os.Open(path) }
func (OS) ReadDir(path string) ([]fs.DirEntry, error) { return os.ReadDir(path) }
func (OS) Remove(path string) error                   { return os.Remove(path) }
func (OS) RemoveAll(path string) error                { return os.RemoveAll(path) }
func (OS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }

// WriteFileAtomic writes data to path via a temporary sibling file plus
// rename, so readers (and crash recovery) observe either the old or the
// new contents, never a torn write. The temp file is removed on failure.
func WriteFileAtomic(fsys FS, path string, data []byte, perm fs.FileMode) error {
	if fsys == nil {
		fsys = OS{}
	}
	tmp := path + ".tmp"
	if err := fsys.WriteFile(tmp, data, perm); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("fsx: atomic write %s: %w", filepath.Base(path), err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("fsx: atomic rename %s: %w", filepath.Base(path), err)
	}
	return nil
}
