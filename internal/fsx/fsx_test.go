package fsx

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomicReplacesAndCleansUp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(OS{}, path, []byte("v1"), 0o644); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	if err := WriteFileAtomic(OS{}, path, []byte("v2"), 0o644); err != nil {
		t.Fatalf("WriteFileAtomic rewrite: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "v2" {
		t.Fatalf("ReadFile = %q, %v; want v2", data, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("dir has %d entries, want 1 (no stray temp files)", len(entries))
	}
}

// failFS wraps OS, failing WriteFile or Rename on demand.
type failFS struct {
	OS
	failWrite  bool
	failRename bool
}

var errInject = errors.New("injected")

func (f failFS) WriteFile(path string, data []byte, perm fs.FileMode) error {
	if f.failWrite {
		return errInject
	}
	return f.OS.WriteFile(path, data, perm)
}

func (f failFS) Rename(oldpath, newpath string) error {
	if f.failRename {
		return errInject
	}
	return f.OS.Rename(oldpath, newpath)
}

func TestWriteFileAtomicPreservesOldOnFailure(t *testing.T) {
	for _, tc := range []struct {
		name string
		fs   failFS
	}{
		{"write-error", failFS{failWrite: true}},
		{"rename-error", failFS{failRename: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "out.json")
			if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
				t.Fatal(err)
			}
			err := WriteFileAtomic(tc.fs, path, []byte("new"), 0o644)
			if !errors.Is(err, errInject) {
				t.Fatalf("err = %v, want injected", err)
			}
			data, _ := os.ReadFile(path)
			if string(data) != "old" {
				t.Fatalf("destination = %q after failed write, want old contents intact", data)
			}
			entries, _ := os.ReadDir(dir)
			if len(entries) != 1 {
				t.Fatalf("dir has %d entries after failure, want 1 (temp cleaned)", len(entries))
			}
		})
	}
}

func TestWriteFileAtomicNilFSDefaultsToOS(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFileAtomic(nil, path, []byte("x"), 0o644); err != nil {
		t.Fatalf("WriteFileAtomic(nil): %v", err)
	}
	if data, _ := os.ReadFile(path); string(data) != "x" {
		t.Fatalf("contents = %q", data)
	}
}

func TestOSAppendCreatesAndAppends(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	var fsys OS
	if err := fsys.Append(path, []byte("aaa"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Append(path, []byte("bbb"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := fsys.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "aaabbb" {
		t.Fatalf("Append produced %q, want aaabbb", got)
	}
	// Appending into a missing directory fails rather than creating it.
	if err := fsys.Append(filepath.Join(dir, "nodir", "wal.log"), []byte("x"), 0o644); err == nil {
		t.Fatal("Append into a missing directory succeeded")
	}
}

func TestOSOpenReadsAt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg")
	var fsys OS
	if err := fsys.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fsys.WriteFile(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, 3); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "3456" {
		t.Fatalf("ReadAt = %q, want 3456", buf)
	}
	if _, err := fsys.Open(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("Open of a missing file succeeded")
	}
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("ReadDir saw %d entries, want 2", len(ents))
	}
	if err := fsys.RemoveAll(filepath.Join(dir, "sub")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "sub")); !os.IsNotExist(err) {
		t.Fatalf("RemoveAll left the directory: %v", err)
	}
}
