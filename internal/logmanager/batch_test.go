package logmanager

import (
	"fmt"
	"testing"
	"time"

	"loglens/internal/agent"
	"loglens/internal/bus"
	"loglens/internal/logtypes"
	"loglens/internal/store"
)

// event is one downstream hand-off observed by the batched-forward tests:
// either a batch of logs or a heartbeat, in arrival order.
type event struct {
	logs []logtypes.Log
	hb   bool
	hbAt time.Time
}

func setupBatched(t *testing.T, cfg Config) (*bus.Bus, *Manager, *[]event) {
	t.Helper()
	b := bus.New()
	var events []event
	cfg.ForwardBatch = func(logs []logtypes.Log) {
		// The slice is only valid for the duration of the call: copy.
		events = append(events, event{logs: append([]logtypes.Log(nil), logs...)})
	}
	m := New(b, store.New(), cfg, func(l logtypes.Log) {
		t.Errorf("per-log forward invoked with ForwardBatch set: %+v", l)
	})
	m.OnHeartbeat(func(source string, ts time.Time) {
		events = append(events, event{hb: true, hbAt: ts})
	})
	return b, m, &events
}

// TestForwardBatchAccumulates: with ForwardBatch set, a poll batch of
// logs arrives downstream as one call, not one per log, and the per-log
// forward hook stays silent.
func TestForwardBatchAccumulates(t *testing.T) {
	b, m, events := setupBatched(t, Config{})
	a, err := agent.New(b, agent.Config{Source: "web"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		a.Send(fmt.Sprintf("line %d", i))
	}
	if n := m.DrainOnce(); n != 8 {
		t.Fatalf("drained %d", n)
	}
	var total int
	for _, ev := range *events {
		if ev.hb {
			t.Fatalf("unexpected heartbeat event")
		}
		total += len(ev.logs)
	}
	if total != 8 {
		t.Fatalf("forwarded %d logs, want 8", total)
	}
	if len(*events) >= 8 {
		t.Errorf("%d hand-offs for 8 logs: batching did not amortize", len(*events))
	}
	for i, l := range (*events)[0].logs {
		if l.Raw != fmt.Sprintf("line %d", i) {
			t.Fatalf("log %d = %+v, out of order", i, l)
		}
	}
}

// TestHeartbeatFlushesBatch: a heartbeat interleaved in a poll batch must
// not overtake the logs consumed before it — the pending batch flushes
// first, so downstream sees logs, then the heartbeat, then later logs.
func TestHeartbeatFlushesBatch(t *testing.T) {
	b, m, events := setupBatched(t, Config{})
	b.CreateTopic(agent.LogsTopic, 1)
	hbAt := time.Date(2016, 2, 23, 9, 0, 31, 0, time.UTC)
	pub := func(raw string) {
		b.Publish(agent.LogsTopic, "svc", []byte(raw), map[string]string{
			agent.HeaderSource: "svc",
		})
	}
	pub("before-1")
	pub("before-2")
	b.Publish(agent.LogsTopic, "svc", nil, map[string]string{
		agent.HeaderSource:    "svc",
		agent.HeaderHeartbeat: hbAt.Format(time.RFC3339Nano),
	})
	pub("after-1")
	m.DrainOnce()

	got := *events
	if len(got) != 3 {
		t.Fatalf("events = %d, want logs/heartbeat/logs: %+v", len(got), got)
	}
	if got[0].hb || len(got[0].logs) != 2 || got[0].logs[1].Raw != "before-2" {
		t.Fatalf("first hand-off = %+v, want the two pre-heartbeat logs", got[0])
	}
	if !got[1].hb || !got[1].hbAt.Equal(hbAt) {
		t.Fatalf("second hand-off = %+v, want the heartbeat", got[1])
	}
	if got[2].hb || len(got[2].logs) != 1 || got[2].logs[0].Raw != "after-1" {
		t.Fatalf("third hand-off = %+v, want the post-heartbeat log", got[2])
	}
}

// TestBatchBufferRecycled: the manager's accumulation buffer is reused
// across flushes and zeroed in between, so pooled capacity cannot pin
// raw-log payloads.
func TestBatchBufferRecycled(t *testing.T) {
	b, m, events := setupBatched(t, Config{})
	a, _ := agent.New(b, agent.Config{Source: "web"})
	a.Send("first")
	m.DrainOnce()
	a.Send("second")
	m.DrainOnce()
	if len(*events) != 2 {
		t.Fatalf("events = %d", len(*events))
	}
	if len(m.batch) != 0 {
		t.Fatalf("batch not drained: %d", len(m.batch))
	}
	for _, l := range m.batch[:cap(m.batch)] {
		if l != (logtypes.Log{}) {
			t.Fatalf("recycled batch buffer retains %+v", l)
		}
	}
}
