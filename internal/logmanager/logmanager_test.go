package logmanager

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"loglens/internal/agent"
	"loglens/internal/bus"
	"loglens/internal/logtypes"
	"loglens/internal/modelmgr"
	"loglens/internal/store"
)

func setup(t *testing.T, cfg Config) (*bus.Bus, *store.Store, *Manager, *[]logtypes.Log, *sync.Mutex) {
	t.Helper()
	b := bus.New()
	st := store.New()
	var mu sync.Mutex
	var forwarded []logtypes.Log
	m := New(b, st, cfg, func(l logtypes.Log) {
		mu.Lock()
		forwarded = append(forwarded, l)
		mu.Unlock()
	})
	return b, st, m, &forwarded, &mu
}

func TestDrainOnceForwardsAndArchives(t *testing.T) {
	b, st, m, forwarded, mu := setup(t, Config{ArchiveLogs: true})
	a, err := agent.New(b, agent.Config{Source: "web"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		a.Send(fmt.Sprintf("line %d", i))
	}
	if n := m.DrainOnce(); n != 5 {
		t.Fatalf("drained %d", n)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(*forwarded) != 5 {
		t.Fatalf("forwarded %d", len(*forwarded))
	}
	l := (*forwarded)[0]
	if l.Source != "web" || l.Seq != 1 || l.Raw != "line 0" {
		t.Errorf("log = %+v", l)
	}
	if l.Arrival.IsZero() {
		t.Error("arrival not set")
	}
	// Archived under the per-source index.
	if got := st.Index(modelmgr.LogsIndexFor("web")).Count(); got != 5 {
		t.Errorf("archived = %d", got)
	}
	if m.Received() != 5 {
		t.Errorf("received = %d", m.Received())
	}
}

func TestArchiveDisabled(t *testing.T) {
	b, st, m, _, _ := setup(t, Config{})
	a, _ := agent.New(b, agent.Config{Source: "web"})
	a.Send("x")
	m.DrainOnce()
	if got := st.Index(modelmgr.LogsIndexFor("web")).Count(); got != 0 {
		t.Errorf("archived = %d with archiving disabled", got)
	}
}

func TestSourceFallbackToKey(t *testing.T) {
	b, _, m, forwarded, mu := setup(t, Config{})
	b.CreateTopic(agent.LogsTopic, 2)
	// A message without the source header but with a key.
	b.Publish(agent.LogsTopic, "keyed-source", []byte("raw"), nil)
	m.DrainOnce()
	mu.Lock()
	defer mu.Unlock()
	if len(*forwarded) != 1 || (*forwarded)[0].Source != "keyed-source" {
		t.Errorf("forwarded = %+v", *forwarded)
	}
}

func TestUnidentifiableDropped(t *testing.T) {
	b, _, m, forwarded, mu := setup(t, Config{})
	b.CreateTopic(agent.LogsTopic, 1)
	b.Publish(agent.LogsTopic, "", []byte("orphan"), nil)
	m.DrainOnce()
	mu.Lock()
	defer mu.Unlock()
	if len(*forwarded) != 0 {
		t.Errorf("unidentifiable message forwarded: %+v", *forwarded)
	}
}

func TestRunConsumesLive(t *testing.T) {
	b, _, m, forwarded, mu := setup(t, Config{})
	a, _ := agent.New(b, agent.Config{Source: "live"})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- m.Run(ctx) }()

	for i := 0; i < 3; i++ {
		a.Send("x")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(*forwarded)
		mu.Unlock()
		if n == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("forwarded %d of 3", n)
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop")
	}
}

func TestRateControl(t *testing.T) {
	b, _, m, _, _ := setup(t, Config{MaxRatePerSec: 100})
	a, _ := agent.New(b, agent.Config{Source: "s"})
	for i := 0; i < 10; i++ {
		a.Send("x")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- m.Run(ctx) }()
	start := time.Now()
	for m.Received() < 10 && time.Since(start) < 5*time.Second {
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)
	cancel()
	<-done
	if m.Received() != 10 {
		t.Fatalf("received %d", m.Received())
	}
	if elapsed < 80*time.Millisecond {
		t.Errorf("rate control ignored: 10 logs at 100/s in %v", elapsed)
	}
}

func TestHeartbeatTagRouting(t *testing.T) {
	b, _, m, forwarded, mu := setup(t, Config{})
	b.CreateTopic(agent.LogsTopic, 1)
	var hbMu sync.Mutex
	var hbs []time.Time
	m.OnHeartbeat(func(source string, ts time.Time) {
		if source != "svc" {
			t.Errorf("source = %q", source)
		}
		hbMu.Lock()
		hbs = append(hbs, ts)
		hbMu.Unlock()
	})
	want := time.Date(2016, 2, 23, 9, 0, 31, 0, time.UTC)
	b.Publish(agent.LogsTopic, "svc", nil, map[string]string{
		agent.HeaderSource:    "svc",
		agent.HeaderHeartbeat: want.Format(time.RFC3339Nano),
	})
	// A malformed heartbeat timestamp is dropped, not forwarded as a log.
	b.Publish(agent.LogsTopic, "svc", nil, map[string]string{
		agent.HeaderSource:    "svc",
		agent.HeaderHeartbeat: "garbage",
	})
	m.DrainOnce()
	hbMu.Lock()
	defer hbMu.Unlock()
	if len(hbs) != 1 || !hbs[0].Equal(want) {
		t.Errorf("heartbeats = %v", hbs)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(*forwarded) != 0 {
		t.Errorf("heartbeat leaked into the log path: %v", *forwarded)
	}
}
