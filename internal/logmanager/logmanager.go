// Package logmanager implements the log manager of §II: it receives logs
// from agents over the bus, identifies their sources, controls the
// incoming rate, archives raw logs into the log storage (organized by
// source), and forwards them downstream to the parser.
package logmanager

import (
	"context"
	"strconv"
	"sync/atomic"
	"time"
	"unsafe"

	"loglens/internal/agent"
	"loglens/internal/bus"
	"loglens/internal/logtypes"
	"loglens/internal/metrics"
	"loglens/internal/modelmgr"
	"loglens/internal/store"
)

// Config tunes the Manager.
type Config struct {
	// Group is the consumer-group name (default "log-manager").
	Group string

	// MaxRatePerSec throttles forwarding (0 = unthrottled): the "rate
	// control" knob protecting downstream parsing from bursts.
	MaxRatePerSec int

	// ArchiveLogs stores raw logs into the log storage (default
	// behaviour; the evaluation harness disables it for pure-throughput
	// runs).
	ArchiveLogs bool

	// Metrics, when set, mirrors the received/heartbeat/dropped counters
	// into the registry (logmanager_* names).
	Metrics *metrics.Registry

	// Tracer, when set, stamps StageBus for every log consumed off the
	// bus.
	Tracer metrics.Tracer

	// ManualCommit runs the consumer with auto-commit disabled: the
	// committed offsets only advance when someone (the recovery layer's
	// commit gate) calls Commit on the group. Run also switches to a
	// pausable polling loop so a checkpoint can quiesce intake.
	ManualCommit bool

	// OnBatch, when set, is invoked after every handled poll batch with
	// the consumed messages — the recovery layer registers their offsets
	// as a pending commit gated on downstream processing.
	OnBatch func(msgs []bus.Message)

	// ForwardBatch, when set, replaces the per-log forward hook: logs
	// accumulate across a poll batch and are handed downstream in one
	// call, amortizing the per-record hand-off into per-partition batch
	// slices on the engine's worker queues. The slice is owned by the
	// Manager and valid only for the duration of the call.
	// Heartbeat-tagged messages flush the pending batch first, so
	// log/heartbeat ordering is preserved. ForwardBatch runs before
	// OnBatch, so downstream counters include the batch when the commit
	// gate registers it.
	ForwardBatch func(logs []logtypes.Log)

	// OnAdmit, when set, receives the newest Arrival stamp of every
	// forwarded poll batch — the admission watermark of the freshness
	// plane. One scan per batch (≤ pollBatchMax logs) keeps the cost
	// off the per-line path.
	OnAdmit func(newest time.Time)
}

// pollBatchMax caps how many messages one poll may return. Unbounded
// polls let a momentarily lagging consumer swallow the whole backlog as
// one giant slice — the allocation (and its zeroing) of those arrays,
// plus the matching downstream record buffers, dwarfs the per-line work.
// Bounded polls keep every buffer in the pipeline pool-sized.
const pollBatchMax = 1024

// Manager pumps logs from the bus into the processing pipeline.
type Manager struct {
	cfg       Config
	bus       bus.Broker
	store     *store.Store
	forward   func(logtypes.Log)
	forwardHB func(source string, t time.Time)

	received atomic.Uint64
	dropped  atomic.Uint64

	// batch accumulates logs between flushes when ForwardBatch is set.
	// It is touched only from the single consumption loop (Run XOR
	// DrainOnce), so it needs no lock.
	batch []logtypes.Log

	// paused/idle implement checkpoint quiescence: Pause stops the
	// ManualCommit polling loop from consuming; idle reports that the
	// loop has observed the pause and is parked, so no more forwards are
	// in flight.
	paused atomic.Bool
	idle   atomic.Bool

	recvCounter *metrics.Counter
	hbCounter   *metrics.Counter
	dropCounter *metrics.Counter
}

// New constructs a Manager. forward is the downstream hook (the parser
// stage); st may be nil when ArchiveLogs is false.
func New(b bus.Broker, st *store.Store, cfg Config, forward func(logtypes.Log)) *Manager {
	if cfg.Group == "" {
		cfg.Group = "log-manager"
	}
	m := &Manager{cfg: cfg, bus: b, store: st, forward: forward}
	if cfg.Metrics != nil {
		m.recvCounter = cfg.Metrics.Counter("logmanager_received_total")
		m.hbCounter = cfg.Metrics.Counter("logmanager_heartbeats_total")
		m.dropCounter = cfg.Metrics.Counter("logmanager_dropped_total")
	}
	return m
}

// OnHeartbeat installs the hook invoked for heartbeat-tagged messages
// arriving on the data channel (§V-B).
func (m *Manager) OnHeartbeat(fn func(source string, t time.Time)) {
	m.forwardHB = fn
}

// Received returns the number of logs consumed from the bus.
func (m *Manager) Received() uint64 { return m.received.Load() }

// Pause asks the ManualCommit polling loop to stop consuming; Idle
// reports when it has parked. Pause before a checkpoint barrier, Resume
// after. Without ManualCommit these are advisory only (the blocking Poll
// loop keeps consuming).
func (m *Manager) Pause()  { m.paused.Store(true) }
func (m *Manager) Resume() { m.paused.Store(false) }

// Idle reports that the polling loop is parked on a Pause: nothing is
// being consumed or forwarded, so upstream counters are final.
func (m *Manager) Idle() bool { return m.idle.Load() }

// Run consumes the logs topic until the context is done.
func (m *Manager) Run(ctx context.Context) error {
	consumer, err := m.bus.Subscribe(m.cfg.Group, agent.LogsTopic)
	if err != nil {
		return err
	}
	var limiter *time.Ticker
	if m.cfg.MaxRatePerSec > 0 {
		limiter = time.NewTicker(time.Second / time.Duration(m.cfg.MaxRatePerSec))
		defer limiter.Stop()
	}
	if m.cfg.ManualCommit {
		consumer.DisableAutoCommit()
		return m.runPausable(ctx, consumer, limiter)
	}
	for {
		msgs, err := consumer.Poll(ctx, pollBatchMax)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		for _, msg := range msgs {
			if limiter != nil {
				select {
				case <-limiter.C:
				case <-ctx.Done():
					return nil
				}
			}
			m.handle(msg)
		}
		m.flushBatch()
		if m.cfg.OnBatch != nil {
			m.cfg.OnBatch(msgs)
		}
	}
}

// runPausable is the ManualCommit consumption loop: non-blocking polls so
// a Pause takes effect between batches, with Idle acknowledging that the
// loop is parked.
func (m *Manager) runPausable(ctx context.Context, consumer bus.Reader, limiter *time.Ticker) error {
	for {
		if ctx.Err() != nil {
			return nil
		}
		if m.paused.Load() {
			m.idle.Store(true)
			time.Sleep(time.Millisecond)
			continue
		}
		m.idle.Store(false)
		msgs := consumer.TryPoll(pollBatchMax)
		if len(msgs) == 0 {
			time.Sleep(time.Millisecond)
			continue
		}
		for _, msg := range msgs {
			if limiter != nil {
				select {
				case <-limiter.C:
				case <-ctx.Done():
					return nil
				}
			}
			m.handle(msg)
		}
		m.flushBatch()
		if m.cfg.OnBatch != nil {
			m.cfg.OnBatch(msgs)
		}
	}
}

// DrainOnce consumes and forwards everything currently pending, without
// blocking — used by batch-mode harnesses that replay a finite corpus.
func (m *Manager) DrainOnce() int {
	consumer, err := m.bus.Subscribe(m.cfg.Group, agent.LogsTopic)
	if err != nil {
		return 0
	}
	n := 0
	for {
		msgs := consumer.TryPoll(pollBatchMax)
		if len(msgs) == 0 {
			return n
		}
		for _, msg := range msgs {
			m.handle(msg)
			n++
		}
		m.flushBatch()
	}
}

// flushBatch hands the accumulated logs downstream in one call and
// recycles the buffer. Entries are zeroed before reuse so the backing
// array does not pin raw-log payloads across batches.
func (m *Manager) flushBatch() {
	if len(m.batch) == 0 {
		return
	}
	m.cfg.ForwardBatch(m.batch)
	if m.cfg.OnAdmit != nil {
		newest := m.batch[0].Arrival
		for _, l := range m.batch[1:] {
			if l.Arrival.After(newest) {
				newest = l.Arrival
			}
		}
		m.cfg.OnAdmit(newest)
	}
	for i := range m.batch {
		m.batch[i] = logtypes.Log{}
	}
	m.batch = m.batch[:0]
}

// handle identifies the source, archives, and forwards one message.
// Heartbeat-tagged messages are routed to the heartbeat hook instead of
// the log path.
func (m *Manager) handle(msg bus.Message) {
	source := msg.Headers[agent.HeaderSource]
	if source == "" {
		// Source identification fallback: the partition key.
		source = msg.Key
	}
	if hb := msg.Headers[agent.HeaderHeartbeat]; hb != "" {
		t, err := time.Parse(time.RFC3339Nano, hb)
		if err != nil || source == "" {
			m.drop()
			return
		}
		if m.hbCounter != nil {
			m.hbCounter.Inc()
		}
		if m.forwardHB != nil {
			// A heartbeat must not overtake logs consumed before it:
			// expiry driven by an early heartbeat would see states the
			// buffered logs have yet to open.
			m.flushBatch()
			m.forwardHB(source, t)
		}
		return
	}
	if source == "" {
		m.drop()
		return
	}
	var seq uint64
	if s := msg.Headers[agent.HeaderSeq]; s != "" {
		seq, _ = strconv.ParseUint(s, 10, 64)
	}
	// Raw aliases the payload without copying: the bus's Publish contract
	// makes message values immutable once published, so the string view
	// is safe and the hot path saves a per-line copy.
	var raw string
	if len(msg.Value) > 0 {
		raw = unsafe.String(unsafe.SliceData(msg.Value), len(msg.Value))
	}
	l := logtypes.Log{
		Source:  source,
		Seq:     seq,
		Arrival: msg.Time,
		Raw:     raw,
	}
	m.received.Add(1)
	if m.recvCounter != nil {
		m.recvCounter.Inc()
	}
	if m.cfg.Tracer != nil {
		m.cfg.Tracer.Stamp(source, seq, metrics.StageBus,
			msg.Topic+"/"+strconv.Itoa(msg.Partition)+"@"+strconv.FormatInt(msg.Offset, 10))
	}

	if m.cfg.ArchiveLogs && m.store != nil {
		m.store.Index(modelmgr.LogsIndexFor(source)).PutAuto(store.Document{
			"raw":     l.Raw,
			"seq":     l.Seq,
			"arrival": l.Arrival,
			"source":  l.Source,
		})
	}
	if m.cfg.ForwardBatch != nil {
		m.batch = append(m.batch, l)
		return
	}
	if m.forward != nil {
		m.forward(l)
	}
}

// drop accounts one unroutable message.
func (m *Manager) drop() {
	m.dropped.Add(1)
	if m.dropCounter != nil {
		m.dropCounter.Inc()
	}
}
