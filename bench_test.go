// Package loglens benchmarks: one benchmark per paper table/figure plus
// the ablations DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// Mapping: BenchmarkTimestamp* -> §VI-A timestamp identification;
// BenchmarkTable4* -> Table IV; BenchmarkFigure4Detection -> Figure 4/5
// detection path; BenchmarkTable5ModelSwap -> Table V update path;
// BenchmarkRebroadcast -> §V-A; BenchmarkFigure6* -> Figure 6;
// BenchmarkCaseADiscovery -> §VII-A; BenchmarkParserIndexAblation and
// BenchmarkGrokMatch/BenchmarkIsMatched -> design ablations.
package loglens

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"loglens/internal/anomaly"
	"loglens/internal/bus"
	"loglens/internal/datagen"
	"loglens/internal/datatype"
	"loglens/internal/experiments"
	"loglens/internal/grok"
	"loglens/internal/logmine"
	"loglens/internal/logstash"
	"loglens/internal/logtypes"
	"loglens/internal/modelmgr"
	"loglens/internal/parser"
	"loglens/internal/preprocess"
	"loglens/internal/seqdetect"
	"loglens/internal/store"
	"loglens/internal/stream"
	"loglens/internal/timestamp"
	"loglens/internal/volume"
	"loglens/internal/wire"
)

// --- shared fixtures, built once ---

var fixtures struct {
	once sync.Once

	d1       datagen.Corpus
	d1Model  *modelmgr.Model
	d1Parsed []*logtypes.ParsedLog

	table4       map[string]datagen.Corpus
	table4Models map[string]*modelmgr.Model

	tsWorkload [][]string
}

func setup(b *testing.B) {
	b.Helper()
	fixtures.once.Do(func() {
		fixtures.d1 = datagen.D1(42)
		builder := modelmgr.NewBuilder(modelmgr.BuilderConfig{})
		m, _, err := builder.Build("d1", experiments.ToLogs("d1", fixtures.d1.Train))
		if err != nil {
			panic(err)
		}
		fixtures.d1Model = m
		p := m.NewParser(nil)
		for i, line := range fixtures.d1.Test {
			pl, err := p.Parse(logtypes.Log{Source: "d1", Seq: uint64(i + 1), Raw: line})
			if err == nil {
				fixtures.d1Parsed = append(fixtures.d1Parsed, pl)
			}
		}

		fixtures.table4 = map[string]datagen.Corpus{}
		fixtures.table4Models = map[string]*modelmgr.Model{}
		pb := modelmgr.NewBuilder(modelmgr.BuilderConfig{SkipSequence: true})
		for _, spec := range datagen.TableIVSpecs {
			c := datagen.TableIVCorpus(spec, 0.01, 42)
			fixtures.table4[spec.Name] = c
			sample := c.Train
			if max := spec.Patterns * 3; len(sample) > max {
				sample = sample[:max]
			}
			m, _, err := pb.Build(spec.Name, experiments.ToLogs(spec.Name, sample))
			if err != nil {
				panic(err)
			}
			fixtures.table4Models[spec.Name] = m
		}

		// Timestamp workload: mixed sources, formats deep in the
		// table.
		formats := timestamp.Defaults()
		chosen := []timestamp.Format{formats[27], formats[52], formats[70]}
		base := time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)
		prefixes := []string{"", "WARN", "app7 pid 4421", "node x9 svc auth"}
		for i := 0; i < 4096; i++ {
			f := chosen[i%len(chosen)]
			line := prefixes[i%len(prefixes)] + " " + base.Add(time.Duration(i)*time.Second).Format(f.Layout) + " request served"
			fixtures.tsWorkload = append(fixtures.tsWorkload, strings.Fields(line))
		}
	})
}

// --- §VI-A: timestamp identification ---

func benchTimestamp(b *testing.B, opts ...timestamp.IdentifierOption) {
	setup(b)
	id := timestamp.New(opts...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id.Identify(fixtures.tsWorkload[i%len(fixtures.tsWorkload)])
	}
}

func BenchmarkTimestampLinear(b *testing.B) {
	benchTimestamp(b, timestamp.WithoutCache(), timestamp.WithoutFilter())
}

func BenchmarkTimestampCacheOnly(b *testing.B) {
	benchTimestamp(b, timestamp.WithoutFilter())
}

func BenchmarkTimestampFilterOnly(b *testing.B) {
	benchTimestamp(b, timestamp.WithoutCache())
}

func BenchmarkTimestampFull(b *testing.B) {
	benchTimestamp(b)
}

// --- Table IV: LogLens vs Logstash parsing ---

func BenchmarkTable4LogLens(b *testing.B) {
	setup(b)
	for _, spec := range datagen.TableIVSpecs {
		b.Run(spec.Name, func(b *testing.B) {
			c := fixtures.table4[spec.Name]
			p := fixtures.table4Models[spec.Name].NewParser(nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Parse(logtypes.Log{Source: spec.Name, Raw: c.Test[i%len(c.Test)]})
			}
		})
	}
}

func BenchmarkTable4Logstash(b *testing.B) {
	setup(b)
	for _, spec := range datagen.TableIVSpecs {
		b.Run(spec.Name, func(b *testing.B) {
			c := fixtures.table4[spec.Name]
			pipe, err := logstash.New(fixtures.table4Models[spec.Name].Patterns)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pipe.Parse(logtypes.Log{Source: spec.Name, Raw: c.Test[i%len(c.Test)]})
			}
		})
	}
}

// --- Figure 4 / Figure 5: the stateful detection path ---

func BenchmarkFigure4Detection(b *testing.B) {
	setup(b)
	det := fixtures.d1Model.NewDetector(seqdetect.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Process(fixtures.d1Parsed[i%len(fixtures.d1Parsed)])
	}
}

func BenchmarkFigure5Heartbeat(b *testing.B) {
	setup(b)
	det := fixtures.d1Model.NewDetector(seqdetect.Config{})
	// Populate open states.
	for _, pl := range fixtures.d1Parsed[:2000] {
		det.Process(pl)
	}
	now := fixtures.d1Parsed[1999].EventTime()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A heartbeat that expires nothing: the per-tick cost of
		// enumerating open states.
		det.HeartbeatFor("d1", now)
	}
}

// --- Table V: model update path ---

func BenchmarkTable5ModelSwap(b *testing.B) {
	setup(b)
	det := fixtures.d1Model.NewDetector(seqdetect.Config{})
	for _, pl := range fixtures.d1Parsed[:2000] {
		det.Process(pl)
	}
	edited := fixtures.d1Model.Sequence.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			det.SetModel(edited)
		} else {
			det.SetModel(fixtures.d1Model.Sequence)
		}
	}
}

// --- §V-A: rebroadcast under load ---

func BenchmarkRebroadcast(b *testing.B) {
	e := stream.New(stream.Config{Partitions: 4}, func(ctx *stream.Context, rec stream.Record) []any {
		ctx.Broadcast("model")
		return nil
	})
	e.Broadcast("model", 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Rebroadcast("model", i)
	}
}

// --- Figure 6: anomaly clustering ---

func BenchmarkFigure6Clusterize(b *testing.B) {
	base := time.Date(2016, 5, 9, 12, 0, 0, 0, time.UTC)
	var records []anomaly.Record
	for i := 0; i < 994; i++ {
		records = append(records, anomaly.Record{
			Type:      anomaly.MissingEnd,
			Timestamp: base.Add(time.Duration(i%4)*13*time.Minute + time.Duration(i)*90*time.Millisecond),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		anomaly.Clusterize(records, 5*time.Minute)
	}
}

// --- §VII-A: pattern discovery throughput ---

func BenchmarkCaseADiscovery(b *testing.B) {
	c := datagen.CustomApp(3670, 42)
	pp := preprocess.New(nil, nil)
	results := make([]preprocess.Result, len(c.Train))
	for i, line := range c.Train {
		results[i] = pp.Process(line)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl := logmine.New(logmine.Config{})
		for _, r := range results {
			cl.Add(r.Tokens, r.Types)
		}
		if cl.NumClusters() != datagen.CustomAppPatterns {
			b.Fatalf("clusters = %d", cl.NumClusters())
		}
	}
}

// --- ablation: signature index vs linear pattern scan ---

func BenchmarkParserIndexAblation(b *testing.B) {
	setup(b)
	spec := datagen.TableIVSpecs[1] // D4: the 3234-pattern stress case
	c := fixtures.table4[spec.Name]
	m := fixtures.table4Models[spec.Name]
	b.Run("indexed", func(b *testing.B) {
		p := m.NewParser(nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Parse(logtypes.Log{Raw: c.Test[i%len(c.Test)]})
		}
	})
	b.Run("linear", func(b *testing.B) {
		p := m.NewParser(nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.ParseLinear(logtypes.Log{Raw: c.Test[i%len(c.Test)]})
		}
	})
}

// --- ablation: candidate-group ordering (ascending generality vs none) ---

func BenchmarkGroupSortAblation(b *testing.B) {
	setup(b)
	spec := datagen.TableIVSpecs[0]
	c := fixtures.table4[spec.Name]
	m := fixtures.table4Models[spec.Name]
	b.Run("sorted", func(b *testing.B) {
		p := m.NewParser(nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Parse(logtypes.Log{Raw: c.Test[i%len(c.Test)]})
		}
	})
	b.Run("unsorted", func(b *testing.B) {
		p := parser.New(m.Patterns, nil, parser.WithoutGroupSort())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Parse(logtypes.Log{Raw: c.Test[i%len(c.Test)]})
		}
	})
}

// --- substrate micro-benchmarks ---

func BenchmarkBusPublishConsume(b *testing.B) {
	bs := bus.New()
	bs.CreateTopic("t", 4)
	consumer, _ := bs.NewConsumer("g", "t")
	payload := []byte("2016/02/23 09:00:31.000 10.0.0.1 job jb-1 completed rc 0")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs.Publish("t", "key", payload, nil)
		if i%1024 == 1023 {
			consumer.TryPoll(0)
		}
	}
}

func BenchmarkStorePutSearch(b *testing.B) {
	st := store.New()
	ix := st.Index("anomalies")
	ix.SetRetention(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.PutAuto(store.Document{"type": "missing-end-state", "n": i})
		if i%1024 == 1023 {
			ix.CountWhere(store.Query{Term: map[string]any{"type": "missing-end-state"}})
		}
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	e := stream.New(stream.Config{Partitions: 4}, func(ctx *stream.Context, rec stream.Record) []any {
		return nil
	})
	done := make(chan error, 1)
	go func() { done <- e.Run(context.Background()) }()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Send(stream.Record{Key: "k"})
	}
	b.StopTimer()
	e.Close()
	<-done
}

// --- micro: grok matching and Algorithm 1 ---

func BenchmarkGrokMatch(b *testing.B) {
	exact, _ := grok.ParsePattern(1, "%{DATETIME:t} %{IP:ip} job %{NOTSPACE:id} scheduled on host %{NOTSPACE:h}")
	wild, _ := grok.ParsePattern(2, "query %{ANYDATA:sql} rc %{NUMBER:rc}")
	exactTokens := strings.Fields("2016/02/23T09:00:31 10.0.0.1 job jb-1 scheduled on host h9")
	exactTokens[0] = "2016/02/23 09:00:31.000"
	wildTokens := strings.Fields("query SELECT a FROM b WHERE x = 1 rc 0")
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exact.Match(exactTokens)
		}
	})
	b.Run("wildcard-dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			wild.Match(wildTokens)
		}
	})
}

func BenchmarkIsMatched(b *testing.B) {
	logSig := []datatype.Type{datatype.DateTime, datatype.IP, datatype.Word, datatype.NotSpace, datatype.Number, datatype.Word, datatype.Number}
	patNoWild := []datatype.Type{datatype.DateTime, datatype.IP, datatype.Word, datatype.NotSpace, datatype.Number, datatype.Word, datatype.Number}
	patWild := []datatype.Type{datatype.DateTime, datatype.AnyData, datatype.Number}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parser.IsMatched(logSig, patNoWild)
		}
	})
	b.Run("wildcard", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parser.IsMatched(logSig, patWild)
		}
	})
}

// --- preprocessing cost ---

func BenchmarkPreprocess(b *testing.B) {
	setup(b)
	pp := preprocess.New(nil, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pp.Process(fixtures.d1.Test[i%len(fixtures.d1.Test)])
	}
}

// --- the volume analytics application ---

func BenchmarkVolumeDetector(b *testing.B) {
	base := time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)
	var train []*logtypes.ParsedLog
	for w := 0; w < 50; w++ {
		for i := 0; i < 20; i++ {
			train = append(train, &logtypes.ParsedLog{
				PatternID:    1 + i%4,
				Timestamp:    base.Add(time.Duration(w)*10*time.Second + time.Duration(i)*100*time.Millisecond),
				HasTimestamp: true,
			})
		}
	}
	profile := volume.Learn(train, 10*time.Second)
	d := volume.New(profile, volume.Config{})
	day := base.Add(24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Process(&logtypes.ParsedLog{
			PatternID:    1 + i%4,
			Timestamp:    day.Add(time.Duration(i) * 100 * time.Millisecond),
			HasTimestamp: true,
		})
	}
}

// --- the wire transport ---

func BenchmarkWireRoundTrip(b *testing.B) {
	var count atomic.Uint64
	srv := wire.NewServer(func(f wire.Frame) { count.Add(1) })
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := wire.Dial(addr, "bench")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	line := "2016/02/23 09:00:31.000 10.0.0.1 job jb-1 completed rc 0"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Send(line)
		if i%1024 == 1023 {
			c.Flush()
		}
	}
	c.Flush()
	b.StopTimer()
	for count.Load() < uint64(b.N) {
		time.Sleep(time.Millisecond)
	}
}
