// Modelupdate: the §V-A zero-downtime model update. A pipeline analyzes a
// live stream while the model manager saves an edited model and the model
// controller announces the update; the streaming engine swaps the model
// between micro-batches (rebroadcast) — no restart, no lost records, no
// lost detector state. The demo deletes one automaton mid-stream (the
// Table V edit) and shows its anomalies stop while the other workflow's
// detection continues uninterrupted.
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"loglens/internal/anomaly"
	"loglens/internal/core"
	"loglens/internal/experiments"
	"loglens/internal/logtypes"
	"loglens/internal/modelmgr"
)

func stamp(t time.Time) string { return t.Format("2006/01/02 15:04:05.000") }

func main() {
	base := time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)

	// Training: two independent workflows, ping (2 steps) and fetch
	// (2 steps).
	var train []string
	for i := 0; i < 300; i++ {
		t0 := base.Add(time.Duration(i*10) * time.Second)
		pid := fmt.Sprintf("pg-%04d", i)
		fid := fmt.Sprintf("ft-%04d", i)
		train = append(train,
			fmt.Sprintf("%s probe %s sent ttl %d", stamp(t0), pid, 32+i%32),
			fmt.Sprintf("%s probe %s echoed rtt %d ms", stamp(t0.Add(time.Second)), pid, 1+i%20),
			fmt.Sprintf("%s fetch %s started url /obj/%d", stamp(t0.Add(2*time.Second)), fid, i),
			fmt.Sprintf("%s fetch %s finished bytes %d", stamp(t0.Add(3*time.Second)), fid, 100+i),
		)
	}

	p, err := core.New(core.Config{DisableHeartbeat: true})
	if err != nil {
		log.Fatal(err)
	}
	model, report, err := p.Train("v1", experiments.ToLogs("net", train))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model v1: %d patterns, %d automata\n", report.Patterns, report.Automata)

	var probeAnoms, fetchAnoms atomic.Int64
	p.OnAnomaly(func(r anomaly.Record) {
		if len(r.EventID) >= 2 && r.EventID[:2] == "pg" {
			probeAnoms.Add(1)
		} else {
			fetchAnoms.Add(1)
		}
		fmt.Printf("  anomaly [%s] event=%s\n", r.Type, r.EventID)
	})
	if err := p.Start(); err != nil {
		log.Fatal(err)
	}
	ag, err := p.Agent("net", 0)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: one bad trace per workflow -> two anomalies.
	send := func(lines ...string) {
		for _, l := range lines {
			if err := ag.Send(l); err != nil {
				log.Fatal(err)
			}
		}
		if err := p.Drain(time.Minute); err != nil {
			log.Fatal(err)
		}
	}
	t1 := base.Add(2 * time.Hour)
	fmt.Println("\nphase 1: full model v1")
	send(
		fmt.Sprintf("%s probe pg-9000 echoed rtt 5 ms", stamp(t1)),   // missing begin
		fmt.Sprintf("%s fetch ft-9000 finished bytes 10", stamp(t1)), // missing begin
		fmt.Sprintf("%s probe pg-9001 sent ttl 33", stamp(t1)),       // normal pair
		fmt.Sprintf("%s probe pg-9001 echoed rtt 4 ms", stamp(t1.Add(time.Second))),
	)

	// Phase 2: the expert decides probe monitoring is noise. Clone the
	// model, delete the probe automaton, save it, announce the update —
	// while the stream keeps running.
	fmt.Println("\nphase 2: deleting the probe automaton via model manager + controller (stream stays up)")
	v2 := model.Clone()
	v2.ID = "v2"
	probeProbe, err := v2.NewParser(nil).Parse(logtypes.Log{Raw: train[0]})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range v2.Sequence.AutomataFor(probeProbe.PatternID) {
		v2.Sequence.Delete(a.ID)
	}
	if err := p.Manager().Save(v2); err != nil {
		log.Fatal(err)
	}
	if err := p.Controller().Announce(modelmgr.Instruction{Op: modelmgr.OpUpdate, ModelID: "v2"}); err != nil {
		log.Fatal(err)
	}
	for p.Model() == nil || p.Model().ID != "v2" {
		time.Sleep(time.Millisecond)
	}
	fmt.Println("model v2 active (installed between micro-batches; engine metrics below)")

	// Phase 3: the same bad traces again — only fetch anomalies now.
	t2 := t1.Add(time.Hour)
	fmt.Println("\nphase 3: model v2 (probe automaton gone)")
	send(
		fmt.Sprintf("%s probe pg-9100 echoed rtt 5 ms", stamp(t2)),   // silent now
		fmt.Sprintf("%s fetch ft-9100 finished bytes 10", stamp(t2)), // still an anomaly
	)

	if err := p.Stop(); err != nil {
		log.Fatal(err)
	}
	m := p.Engine().Metrics()
	fmt.Printf("\nsummary: probe anomalies %d (1 before the update, 0 after), fetch anomalies %d\n",
		probeAnoms.Load(), fetchAnoms.Load())
	fmt.Printf("engine: %d records in %d micro-batches, %d model update(s), update lock-step %v, restarts 0\n",
		m.Records, m.Batches, m.UpdatesApplied, m.UpdateBlocked)
}
