// Datacenter: the paper's motivating scenario (§I, §VI) — operational
// trace logs from a data center streamed through the full service with a
// live heartbeat controller and the visualization dashboard. It replays
// the D1 corpus (job and volume workflows with 21 injected anomalous
// sequences), paced so the heartbeat controller's synthesized log time
// expires open states while the stream runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"loglens/internal/anomaly"
	"loglens/internal/core"
	"loglens/internal/dashboard"
	"loglens/internal/datagen"
	"loglens/internal/experiments"
	"loglens/internal/heartbeat"
	"loglens/internal/store"
)

func main() {
	dashAddr := flag.String("dashboard", "", "serve the dashboard on this address while replaying (e.g. :8080)")
	rate := flag.Int("rate", 8000, "replay rate in logs/sec")
	flag.Parse()

	corpus := datagen.D1(42)
	fmt.Printf("datacenter trace corpus: %d training / %d production logs, %d anomalous sequences injected\n",
		len(corpus.Train), len(corpus.Test), corpus.Truth.TotalAnomalies)

	pipeline, err := core.New(core.Config{
		Heartbeat:   heartbeat.Config{Interval: 100 * time.Millisecond},
		ArchiveLogs: false,
	})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	_, report, err := pipeline.Train("datacenter", experiments.ToLogs("dc", corpus.Train))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: %d patterns, %d automata in %v\n",
		report.Patterns, report.Automata, time.Since(start).Round(time.Millisecond))

	counts := map[anomaly.Type]int{}
	pipeline.OnAnomaly(func(r anomaly.Record) {
		counts[r.Type]++
		fmt.Printf("  %-26s event=%-10s %s\n", r.Type, r.EventID, r.Reason)
	})
	if err := pipeline.Start(); err != nil {
		log.Fatal(err)
	}

	if *dashAddr != "" {
		go func() {
			fmt.Printf("dashboard: http://%s/\n", *dashAddr)
			if err := http.ListenAndServe(*dashAddr, dashboard.New(pipeline)); err != nil {
				log.Println("dashboard:", err)
			}
		}()
	}

	agent, err := pipeline.Agent("dc", *rate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replaying production stream at %d logs/sec...\n", *rate)
	for _, line := range corpus.Test {
		if err := agent.Send(line); err != nil {
			log.Fatal(err)
		}
	}
	if err := pipeline.Drain(5 * time.Minute); err != nil {
		log.Fatal(err)
	}
	// The final heartbeat: report events that never completed.
	pipeline.InjectHeartbeat("dc", corpus.Truth.LastLogTime.Add(24*time.Hour))
	time.Sleep(200 * time.Millisecond)
	if err := pipeline.Drain(time.Minute); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nreplay done: %d anomalies (ground truth %d)\n",
		pipeline.AnomalyCount(), corpus.Truth.TotalAnomalies)
	for typ, n := range counts {
		fmt.Printf("  %-26s %d\n", typ, n)
	}
	// An ad-hoc anomaly-storage query, as an operator would run from
	// the dashboard.
	criticals := pipeline.Anomalies(store.Query{Term: map[string]any{"severity": "critical"}})
	fmt.Printf("critical anomalies in storage: %d\n", len(criticals))

	if *dashAddr != "" {
		fmt.Println("dashboard still serving (Ctrl-C to exit)")
		select {}
	}
	if err := pipeline.Stop(); err != nil {
		log.Fatal(err)
	}
}
