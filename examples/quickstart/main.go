// Quickstart: the smallest complete LogLens run. Train on a handful of
// "correct" logs, stream production logs through the pipeline, and see
// both anomaly classes — an unparsed log (stateless, §III) and a log
// sequence that breaks the learned workflow (stateful, §IV).
package main

import (
	"fmt"
	"log"
	"time"

	"loglens/internal/anomaly"
	"loglens/internal/core"
	"loglens/internal/logtypes"
)

func main() {
	// Training corpus: a tiny request workflow. Each request logs
	// "received" and then "served"; LogLens discovers the patterns, the
	// req-NNN event ID, and the two-state automaton on its own.
	var training []logtypes.Log
	base := time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("req-%03d", i)
		t0 := base.Add(time.Duration(i*5) * time.Second)
		training = append(training,
			logtypes.Log{Source: "web", Seq: uint64(2*i + 1), Raw: fmt.Sprintf(
				"%s 10.0.0.%d request %s received path /api/items/%d",
				t0.Format("2006/01/02 15:04:05.000"), i%5+1, id, i%40)},
			logtypes.Log{Source: "web", Seq: uint64(2*i + 2), Raw: fmt.Sprintf(
				"%s 10.0.0.%d request %s served bytes %d",
				t0.Add(time.Duration(1+i%2)*time.Second).Format("2006/01/02 15:04:05.000"), i%5+1, id, 512+i)},
		)
	}

	pipeline, err := core.New(core.Config{DisableHeartbeat: true})
	if err != nil {
		log.Fatal(err)
	}
	model, report, err := pipeline.Train("quickstart", training)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned %d patterns and %d automaton(s) from %d logs in %v\n",
		report.Patterns, report.Automata, report.TrainingLogs, report.Elapsed.Round(time.Millisecond))
	for _, p := range model.Patterns.Patterns() {
		fmt.Printf("  pattern %d: %s\n", p.ID, p)
	}

	pipeline.OnAnomaly(func(r anomaly.Record) {
		fmt.Printf("ANOMALY [%s] %s\n", r.Type, r.Reason)
	})
	if err := pipeline.Start(); err != nil {
		log.Fatal(err)
	}

	agent, err := pipeline.Agent("web", 0)
	if err != nil {
		log.Fatal(err)
	}

	// Production stream: one normal request, one request served without
	// ever being received (missing begin state), and one line no
	// pattern matches.
	prod := base.Add(time.Hour)
	stamp := func(d time.Duration) string { return prod.Add(d).Format("2006/01/02 15:04:05.000") }
	for _, line := range []string{
		stamp(0) + " 10.0.0.1 request req-900 received path /api/items/7",
		stamp(time.Second) + " 10.0.0.1 request req-900 served bytes 600",
		stamp(2*time.Second) + " 10.0.0.2 request req-901 served bytes 999",
		"segfault at 0x0 in worker thread",
	} {
		if err := agent.Send(line); err != nil {
			log.Fatal(err)
		}
	}
	if err := pipeline.Drain(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	if err := pipeline.Stop(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done: %d anomalies (%d unparsed) from 4 production logs\n",
		pipeline.AnomalyCount(), pipeline.UnparsedCount())
}
