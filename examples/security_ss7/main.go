// Security: the §VII-B case study — discovering SS7 spoofing attacks from
// telecom signalling logs with no domain knowledge. LogLens learns the
// normal protocol sequence (InvokePurgeMs -> InvokeSendAuthenticationInfo
// -> InvokeUpdateLocation) from two hours of traffic, then flags the
// attack traces in the final hour: sequences that never reach
// InvokeUpdateLocation because the attacker only wants credentials
// (Figure 7). The anomalies arrive in intensive bursts, which temporal
// clustering surfaces as the four attack windows of Figure 6.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"loglens/internal/datagen"
	"loglens/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 0.02, "background-traffic scale (1.0 = the paper's 2.7M logs)")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	corpus := datagen.SS7(*scale, *seed)
	fmt.Printf("SS7 corpus: %d training logs (10:00-12:00), %d detection logs (12:00-13:00)\n",
		len(corpus.Train), len(corpus.Test))

	res, err := experiments.RunSS7(corpus, 5*time.Minute)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model: %d patterns, %d automata (trained in %v, no domain knowledge)\n",
		res.Report.Patterns, res.Report.Automata, res.TrainTime.Round(time.Millisecond))
	fmt.Printf("detection: %d anomalous sequences in %v\n",
		res.Anomalies, res.DetectTime.Round(time.Millisecond))
	fmt.Printf("spoofing signature (missing InvokeUpdateLocation): %d of %d\n",
		res.SpoofingSignature, res.Anomalies)

	fmt.Printf("\nattack bursts (temporal clusters, as in Figure 6):\n")
	for i, cl := range res.Clusters {
		fmt.Printf("  burst %d: %s .. %s  %4d spoofing attempts\n",
			i+1, cl.Start.Format("15:04:05"), cl.End.Format("15:04:05"), cl.Count())
	}

	// A sample attack trace, as an analyst would pull it up.
	if len(res.Clusters) > 0 && len(res.Clusters[0].Records) > 0 {
		r := res.Clusters[0].Records[0]
		fmt.Printf("\nsample attack trace (event %s):\n", r.EventID)
		for _, l := range r.Logs {
			fmt.Printf("  %s\n", l.Raw)
		}
		fmt.Println("  <no InvokeUpdateLocation: the attacker never completes the protocol>")
	}
	fmt.Printf("\npaper: 994 anomalies in 4 clusters found in 5 minutes vs 2 expert-days of manual analysis (576x)\n")
}
