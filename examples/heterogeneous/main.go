// Heterogeneous: the paper's central design goal — "handling heterogeneous
// logs ... irrespective of its origin" (§II-A). One pipeline monitors
// three log sources with entirely different formats and timestamp styles:
// a web tier (ISO timestamps, request workflows), a storage array (syslog
// style, volume workflows), and a Java application (US-style dates,
// unparsed-anomaly monitoring only). Each source gets its own unsupervised
// model; sources stay isolated.
package main

import (
	"fmt"
	"log"
	"time"

	"loglens/internal/anomaly"
	"loglens/internal/core"
	"loglens/internal/experiments"
)

func main() {
	p, err := core.New(core.Config{DisableHeartbeat: true})
	if err != nil {
		log.Fatal(err)
	}

	base := time.Date(2016, 2, 23, 9, 0, 0, 0, time.UTC)

	// Web tier: ISO-8601 timestamps.
	var web []string
	for i := 0; i < 150; i++ {
		t0 := base.Add(time.Duration(i*7) * time.Second)
		id := fmt.Sprintf("rq-%05d", i)
		web = append(web,
			fmt.Sprintf("%s INFO http request %s accepted route /api/v%d", t0.Format("2006-01-02T15:04:05"), id, i%3+1),
			fmt.Sprintf("%s INFO http request %s completed status %d", t0.Add(time.Second).Format("2006-01-02T15:04:05"), id, 200),
		)
	}

	// Storage array: syslog-style "MMM dd HH:mm:ss".
	var storage []string
	for i := 0; i < 150; i++ {
		t0 := base.Add(time.Duration(i*11) * time.Second)
		id := fmt.Sprintf("vol-%05d", i)
		storage = append(storage,
			fmt.Sprintf("%s array3 snapshot %s started size %d gb", t0.Format("Jan 02 15:04:05"), id, 8*(i%16+1)),
			fmt.Sprintf("%s array3 snapshot %s sealed blocks %d", t0.Add(2*time.Second).Format("Jan 02 15:04:05"), id, 1024+i),
		)
	}

	// Java app: US-style dates, no event workflow — stateless
	// monitoring only.
	var app []string
	for i := 0; i < 150; i++ {
		t0 := base.Add(time.Duration(i*13) * time.Second)
		app = append(app,
			fmt.Sprintf("%s com.example.Worker heap used %d mb of %d mb", t0.Format("02/01/2006 15:04:05"), 100+i%400, 512),
		)
	}

	for _, src := range []struct {
		name  string
		lines []string
	}{{"web", web}, {"storage", storage}, {"app", app}} {
		m, report, err := p.TrainFor(src.name, src.name+"-model", experiments.ToLogs(src.name, src.lines))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("source %-8s -> model %q: %d patterns, %d automata\n",
			src.name, m.ID, report.Patterns, report.Automata)
	}

	p.OnAnomaly(func(r anomaly.Record) {
		fmt.Printf("  ANOMALY source=%-8s [%s] %s\n", r.Source, r.Type, r.Reason)
	})
	if err := p.Start(); err != nil {
		log.Fatal(err)
	}

	agents := map[string]interface{ Send(string) error }{}
	for _, name := range []string{"web", "storage", "app"} {
		ag, err := p.Agent(name, 0)
		if err != nil {
			log.Fatal(err)
		}
		agents[name] = ag
	}

	tt := base.Add(time.Hour)
	fmt.Println("\nstreaming mixed production traffic:")
	// Normal traffic on every source.
	agents["web"].Send(fmt.Sprintf("%s INFO http request rq-90000 accepted route /api/v1", tt.Format("2006-01-02T15:04:05")))
	agents["web"].Send(fmt.Sprintf("%s INFO http request rq-90000 completed status 200", tt.Add(time.Second).Format("2006-01-02T15:04:05")))
	agents["storage"].Send(fmt.Sprintf("%s array3 snapshot vol-90000 started size 32 gb", tt.Format("Jan 02 15:04:05")))
	agents["storage"].Send(fmt.Sprintf("%s array3 snapshot vol-90000 sealed blocks 2000", tt.Add(2*time.Second).Format("Jan 02 15:04:05")))
	agents["app"].Send(fmt.Sprintf("%s com.example.Worker heap used 250 mb of 512 mb", tt.Format("02/01/2006 15:04:05")))

	// Three anomalies, one per source class:
	// a web request accepted three times before completing (occurrence
	// violation),
	agents["web"].Send(fmt.Sprintf("%s INFO http request rq-90001 accepted route /api/v1", tt.Add(5*time.Second).Format("2006-01-02T15:04:05")))
	agents["web"].Send(fmt.Sprintf("%s INFO http request rq-90001 accepted route /api/v1", tt.Add(5*time.Second).Format("2006-01-02T15:04:05")))
	agents["web"].Send(fmt.Sprintf("%s INFO http request rq-90001 accepted route /api/v1", tt.Add(6*time.Second).Format("2006-01-02T15:04:05")))
	agents["web"].Send(fmt.Sprintf("%s INFO http request rq-90001 completed status 200", tt.Add(7*time.Second).Format("2006-01-02T15:04:05")))
	// a snapshot sealing that was never started (missing begin),
	agents["storage"].Send(fmt.Sprintf("%s array3 snapshot vol-90001 sealed blocks 5", tt.Add(8*time.Second).Format("Jan 02 15:04:05")))
	// and a Java stack trace the app model has never seen (unparsed).
	agents["app"].Send("java.lang.OutOfMemoryError: Java heap space at com.example.Worker.run")

	if err := p.Drain(time.Minute); err != nil {
		log.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d anomalies across %d heterogeneous sources (%d stateless)\n",
		p.AnomalyCount(), 3, p.UnparsedCount())
}
