// Netbus transport round-trip: the per-publish cost of the framed RPC
// path — JSON encode, CRC frame, loopback TCP write, broker dispatch,
// bus append, and the acked response — measured against a real broker
// socket because the syscall boundary IS the cost being guarded.
//
// Rerun with:
//
//	go test -run='^$' -bench=BenchmarkNetbusRoundTrip -benchmem -count=5 .
package loglens

import (
	"context"
	"testing"
	"time"

	"loglens/internal/bus"
	"loglens/internal/netbus"
)

// BenchmarkNetbusRoundTrip is the guarded transport benchmark: ns/op is
// one acked publish over loopback TCP, end to end through the broker.
func BenchmarkNetbusRoundTrip(b *testing.B) {
	srv := netbus.NewServer(bus.New())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	client := netbus.Dial(addr, netbus.Options{})
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = client.WaitConnected(ctx)
	cancel()
	if err != nil {
		b.Fatal(err)
	}
	if err := client.CreateTopic("bench", 1); err != nil {
		b.Fatal(err)
	}

	line := []byte("<13>Feb  5 17:32:18 web01 sshd[4721]: session 42 opened for user app")
	headers := map[string]string{"source": "bench"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := client.Publish("bench", "bench", line, headers); err != nil {
			b.Fatal(err)
		}
	}
}
