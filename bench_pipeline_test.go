// End-to-end pipeline throughput: the headline lines/sec number of the
// PR-5 hot-path work and the benchmark the CI benchguard job regresses
// against. Lines from the datagen D1 corpus flow the full production
// path — bus publish → log manager → streaming engine → parser →
// sequence detector — and the benchmark reports ns per line plus a
// lines/sec metric.
//
// Rerun with:
//
//	go test -run='^$' -bench=BenchmarkPipelineThroughput -benchmem -count=5 .
package loglens

import (
	"strconv"
	"testing"
	"time"

	"loglens/internal/agent"
	"loglens/internal/core"
)

// benchPipeline streams b.N D1 test lines through a full pipeline and
// waits for them to drain. sources controls partition spread: each
// source keys to one partition, so one source exercises the serial path
// and several sources exercise parallel partitions.
func benchPipeline(b *testing.B, partitions, sources int, disableLatency bool) {
	setup(b)
	p, err := core.New(core.Config{
		Partitions:            partitions,
		BatchInterval:         time.Millisecond,
		DisableHeartbeat:      true,
		DisableAnomalyStorage: true,
		DisableLatency:        disableLatency,
	})
	if err != nil {
		b.Fatal(err)
	}
	p.InstallModel(fixtures.d1Model)
	if err := p.Start(); err != nil {
		b.Fatal(err)
	}
	defer p.Stop()

	lines := fixtures.d1.Test
	srcNames := make([]string, sources)
	headers := make([]map[string]string, sources)
	for i := range srcNames {
		srcNames[i] = "d1-" + strconv.Itoa(i)
		headers[i] = map[string]string{agent.HeaderSource: srcNames[i]}
	}
	bus := p.Bus()

	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		s := i % sources
		bus.Publish(agent.LogsTopic, srcNames[s], []byte(lines[i%len(lines)]), headers[s])
	}
	if err := p.Drain(5 * time.Minute); err != nil {
		b.Fatal(err)
	}
	elapsed := time.Since(start)
	b.StopTimer()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "lines/sec")
	}
}

// BenchmarkPipelineThroughput is the e2e headline benchmark: ns/op is
// the full-pipeline cost per log line, with the latency/freshness
// instrumentation on (the production default).
func BenchmarkPipelineThroughput(b *testing.B) {
	for _, c := range []struct {
		name                string
		partitions, sources int
	}{
		{"p1", 1, 1},
		{"p4", 4, 4},
		{"p8", 8, 8},
	} {
		b.Run(c.name, func(b *testing.B) {
			benchPipeline(b, c.partitions, c.sources, false)
		})
	}
}

// BenchmarkPipelineThroughputNoLatency is the Config.DisableLatency
// variant: diffing it against BenchmarkPipelineThroughput isolates the
// cost of the latency/freshness plane (BENCH_PR8.txt). Not benchguard
// gated — the guarded numbers are the enabled path.
func BenchmarkPipelineThroughputNoLatency(b *testing.B) {
	for _, c := range []struct {
		name                string
		partitions, sources int
	}{
		{"p1", 1, 1},
		{"p4", 4, 4},
		{"p8", 8, 8},
	} {
		b.Run(c.name, func(b *testing.B) {
			benchPipeline(b, c.partitions, c.sources, true)
		})
	}
}

// calSink defeats dead-code elimination in BenchmarkCalibration.
var calSink uint32

// BenchmarkCalibration is a fixed, product-independent workload (FNV-1a
// over 1 KiB) that scripts/benchguard.sh runs alongside the guarded
// benchmarks to normalize the checked-in ns/op baseline to whatever
// machine the guard runs on. Do not change this function: any edit
// invalidates every recorded baseline in scripts/bench_baseline.txt.
func BenchmarkCalibration(b *testing.B) {
	buf := make([]byte, 1024)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.ResetTimer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		h := uint32(2166136261)
		for _, c := range buf {
			h ^= uint32(c)
			h *= 16777619
		}
		sink += h
	}
	calSink = sink
}
